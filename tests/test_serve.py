"""Tests for the batched inference service (registry, batcher, cache).

The serving layer's contract mirrors the perf layer's: it must change no
number.  Micro-batched results are asserted **bit-identical**
(``np.array_equal``) to per-request predicts, registry freeze must not
perturb predictions, and the cache must never serve across a version
boundary.
"""

import pickle
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.gbm import GradientBoostingRegressor
from repro.serve import (
    InferenceService,
    MicroBatcher,
    ModelRegistry,
    PredictionCache,
    freeze_arrays,
)

pytestmark = pytest.mark.serve


def _data(n=900, d=6, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n, d))
    y = np.sin(2 * X[:, 0]) + X[:, 1] * X[:, 2] + 0.05 * rng.normal(0, 1, n)
    return X, y


@pytest.fixture(scope="module")
def data():
    return _data()


@pytest.fixture(scope="module")
def gbm(data):
    X, y = data
    return GradientBoostingRegressor(n_estimators=25, max_depth=4, loss="squared").fit(X, y)


@pytest.fixture(scope="module")
def forest(data):
    X, y = data
    return RandomForestRegressor(n_estimators=30, max_depth=9, random_state=1).fit(X, y)


def _fresh_gbm(data, seed=0, n_estimators=25):
    X, y = data
    return GradientBoostingRegressor(
        n_estimators=n_estimators, max_depth=4, loss="squared", random_state=seed
    ).fit(X, y)


def _fresh_forest(data, seed=1):
    X, y = data
    return RandomForestRegressor(n_estimators=30, max_depth=9, random_state=seed).fit(X, y)


# ---------------------------------------------------------------------- #
class TestModelRegistry:
    def test_versions_increment_per_name(self, data):
        reg = ModelRegistry()
        assert reg.register("m", _fresh_gbm(data)) == 1
        assert reg.register("m", _fresh_gbm(data)) == 2
        assert reg.register("other", _fresh_gbm(data)) == 1
        assert reg.versions("m") == [1, 2]
        assert reg.names() == ["m", "other"]

    def test_register_requires_predict(self):
        with pytest.raises(TypeError):
            ModelRegistry().register("m", object())

    def test_unknown_name_raises(self):
        reg = ModelRegistry()
        with pytest.raises(LookupError):
            reg.get("nope")

    def test_production_requires_promote(self, data):
        reg = ModelRegistry()
        reg.register("m", _fresh_gbm(data))
        with pytest.raises(LookupError):
            reg.get("m")  # staged, not promoted

    def test_promote_and_rollback(self, data):
        reg = ModelRegistry()
        m1, m2 = _fresh_gbm(data, 0), _fresh_gbm(data, 1)
        reg.register("m", m1, promote=True)
        reg.register("m", m2)
        assert reg.get("m") is m1
        reg.promote("m", 2)
        assert reg.get("m") is m2
        assert reg.rollback("m") == 1
        assert reg.get("m") is m1
        assert reg.get("m", version=2) is m2  # explicit versions still there

    def test_rollback_without_history_raises(self, data):
        reg = ModelRegistry()
        reg.register("m", _fresh_gbm(data), promote=True)
        with pytest.raises(LookupError):
            reg.rollback("m")

    def test_promote_unknown_version_raises(self, data):
        reg = ModelRegistry()
        reg.register("m", _fresh_gbm(data))
        with pytest.raises(LookupError):
            reg.promote("m", 7)

    def test_listener_notified_on_stage_changes(self, data):
        reg = ModelRegistry()
        events = []
        reg.add_listener(lambda *a: events.append(a))
        reg.register("m", _fresh_gbm(data, 0), promote=True)
        reg.register("m", _fresh_gbm(data, 1), promote=True)
        reg.rollback("m")
        assert events == [("m", 1, "promote"), ("m", 2, "promote"), ("m", 1, "rollback")]

    def test_freeze_on_register(self, data):
        X, _ = data
        model = _fresh_gbm(data)
        ref = model.predict(X[:50])  # also builds the pack pre-freeze
        reg = ModelRegistry()
        reg.register("m", model, promote=True)
        assert reg.get_version("m").n_frozen_arrays > 0
        nd = model.trees_[0].nodes_
        for arr in (nd.feature, nd.threshold, nd.left, nd.right, nd.value):
            assert not arr.flags.writeable
        pack = model._pack
        for arr in (pack.feature, pack.threshold, pack.left, pack.value, pack.roots):
            assert not arr.flags.writeable
        for edges in model.binner_.edges_:
            assert not edges.flags.writeable
        assert np.array_equal(model.predict(X[:50]), ref)  # freeze changed nothing

    def test_frozen_model_binning_cache_end_to_end(self, data):
        """A registered model + frozen request matrix = one binning pass."""
        model = _fresh_gbm(data)
        ModelRegistry().register("m", model, promote=True)
        Xq = _data(seed=9)[0][:80].copy()  # owned memory: freezing it is real immutability
        Xq.setflags(write=False)
        c1 = model.binner_.transform(Xq)
        c2 = model.binner_.transform(Xq)
        assert c1 is c2  # identity-keyed LRU hit through the frozen artifact

    def test_freeze_arrays_counts_and_idempotent(self, data):
        model = _fresh_gbm(data)
        n1 = freeze_arrays(model)
        assert n1 > 0
        assert freeze_arrays(model) == 0  # second walk finds nothing writable

    def test_registered_model_refuses_refit(self, data):
        """Freeze guards existing arrays; sealing fit guards against the
        rebind-new-arrays refit that would mutate a version in place."""
        model = _fresh_gbm(data)
        X, y = data
        ref = model.predict(X[:20])
        ModelRegistry().register("m", model, promote=True)
        with pytest.raises(RuntimeError, match="registered and immutable"):
            model.fit(X, y)
        assert np.array_equal(model.predict(X[:20]), ref)  # version unchanged

    def test_unregister_retired_version(self, data):
        reg = ModelRegistry()
        reg.register("m", _fresh_gbm(data, 0), promote=True)
        reg.register("m", _fresh_gbm(data, 1), promote=True)
        with pytest.raises(ValueError):
            reg.unregister("m", 2)  # production is refused
        reg.unregister("m", 1)      # retired v1 dropped, history scrubbed
        assert reg.versions("m") == [2]
        with pytest.raises(LookupError):
            reg.rollback("m")       # v1 no longer in the history stack
        with pytest.raises(LookupError):
            reg.unregister("m", 1)

    def test_unregister_notifies_listeners(self, data):
        """Regression: unregister used to skip _notify entirely, so caches
        listening for stage changes never learned a version was dropped."""
        reg = ModelRegistry()
        events = []
        reg.add_listener(lambda *a: events.append(a))
        reg.register("m", _fresh_gbm(data, 0), promote=True)
        reg.register("m", _fresh_gbm(data, 1), promote=True)
        reg.unregister("m", 1)
        assert events[-1] == ("m", 1, "unregister")

    def test_registered_model_pickle_roundtrip(self, data):
        """Regression: _seal_fit assigned a closure to model.fit, which
        broke pickling of every registered model (snapshot/shard flows)."""
        X, y = data
        model = _fresh_gbm(data)
        ref = model.predict(X[:30])
        ModelRegistry().register("m", model, promote=True)
        back = pickle.loads(pickle.dumps(model))
        assert np.array_equal(back.predict(X[:30]), ref)
        with pytest.raises(RuntimeError, match="registered and immutable"):
            back.fit(X, y)  # the seal survives the roundtrip too


# ---------------------------------------------------------------------- #
class TestMicroBatcher:
    def test_concurrent_single_rows_bit_identical_gbm(self, data, gbm):
        X, _ = data
        rows = _data(n=300, seed=3)[0]
        ref = np.array([gbm.predict(r[None, :])[0] for r in rows])
        with MicroBatcher(gbm, max_batch=32, max_delay=0.02) as mb:
            with ThreadPoolExecutor(8) as ex:
                tickets = list(ex.map(mb.submit, rows))
            mb.flush()
            out = np.array([t.result(timeout=10.0) for t in tickets])
        assert np.array_equal(out, ref)

    def test_mixed_kinds_bit_identical_forest(self, data, forest):
        rows = _data(n=120, seed=4)[0]
        ref_p = np.array([forest.predict(r[None, :])[0] for r in rows])
        ref_m = np.array([forest.predict_dist(r[None, :])[0][0] for r in rows])
        ref_v = np.array([forest.predict_dist(r[None, :])[1][0] for r in rows])
        with MicroBatcher(forest, max_batch=48, max_delay=0.02) as mb:
            tp = [mb.submit(r, kind="predict") for r in rows]
            td = [mb.submit(r, kind="predict_dist") for r in rows]
            mb.flush()
            out_p = np.array([t.result(10.0) for t in tp])
            dist = [t.result(10.0) for t in td]
        assert np.array_equal(out_p, ref_p)
        assert np.array_equal(np.array([m for m, _ in dist]), ref_m)
        assert np.array_equal(np.array([v for _, v in dist]), ref_v)

    def test_caller_buffer_reuse_scores_submit_time_bytes(self, data, gbm):
        """Requests are copied at submit: mutating the caller's buffer
        afterwards must not change what the flush scores."""
        rows = _data(n=4, seed=16)[0]
        buf = rows[0].copy()
        with MicroBatcher(gbm, max_batch=10_000, max_delay=600.0) as mb:
            ticket = mb.submit(buf)
            buf[:] = rows[1]  # client reuses its buffer before the flush
            mb.flush()
            assert ticket.result(5.0) == gbm.predict(rows[0][None, :])[0]

    def test_multi_row_blocks(self, data, gbm):
        rng = np.random.default_rng(5)
        blocks = [rng.normal(0, 1, (m, data[0].shape[1])) for m in (1, 3, 7, 2, 5)]
        with MicroBatcher(gbm, max_batch=1000, max_delay=5.0) as mb:
            tickets = [mb.submit(b) for b in blocks]
            mb.flush()
            outs = [t.result(10.0) for t in tickets]
        for b, out in zip(blocks, outs):
            assert np.array_equal(out, gbm.predict(b))

    def test_size_trigger_flushes_without_deadline(self, data, gbm):
        rows = _data(n=16, seed=6)[0]
        with MicroBatcher(gbm, max_batch=8, max_delay=600.0) as mb:
            tickets = [mb.submit(r) for r in rows]
            # 16 rows with max_batch=8 → two size flushes, no deadline wait
            out = np.array([t.result(timeout=5.0) for t in tickets])
            assert mb.counters()["size_flushes"] == 2
            assert mb.counters()["deadline_flushes"] == 0
        assert np.array_equal(out, np.array([gbm.predict(r[None, :])[0] for r in rows]))

    def test_deadline_trigger_flushes_partial_batch(self, data, gbm):
        rows = _data(n=3, seed=7)[0]
        with MicroBatcher(gbm, max_batch=10_000, max_delay=0.03) as mb:
            t0 = time.monotonic()
            tickets = [mb.submit(r) for r in rows]
            out = [t.result(timeout=5.0) for t in tickets]  # no manual flush
            elapsed = time.monotonic() - t0
            assert mb.counters()["deadline_flushes"] >= 1
            assert mb.counters()["size_flushes"] == 0
        assert elapsed < 5.0
        assert np.array_equal(
            np.array(out), np.array([gbm.predict(r[None, :])[0] for r in rows])
        )

    def test_fifo_order_under_concurrent_submitters(self, data, gbm):
        rows = _data(n=400, seed=8)[0]
        with MicroBatcher(gbm, max_batch=64, max_delay=0.02) as mb:
            with ThreadPoolExecutor(8) as ex:
                tickets = list(ex.map(mb.submit, rows))
            mb.flush()
            for t in tickets:
                t.result(timeout=10.0)
        # arrival (seq) order and scoring (batch_seq, batch_pos) order agree
        by_arrival = sorted(tickets, key=lambda t: t.seq)
        positions = [(t.batch_seq, t.batch_pos) for t in by_arrival]
        assert positions == sorted(positions)
        # and every request still got its own row's answer
        by_arrival_rows = sorted(zip(tickets, rows), key=lambda tr: tr[0].seq)
        for t, row in by_arrival_rows:
            assert t.result() == gbm.predict(row[None, :])[0]

    def test_model_error_propagates_and_batcher_survives(self, data, gbm):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("model store down")
            return gbm

        row = _data(n=1, seed=9)[0][0]
        with MicroBatcher(flaky, max_batch=1, max_delay=0.01) as mb:
            with pytest.raises(RuntimeError, match="model store down"):
                mb.submit(row).result(timeout=5.0)
            # the next batch resolves fine
            assert mb.submit(row).result(timeout=5.0) == gbm.predict(row[None, :])[0]

    def test_bad_request_does_not_poison_cobatched_neighbours(self, data, gbm):
        """A wrong-width row must fail alone; the rest of its flush succeeds."""
        rows = _data(n=6, seed=14)[0]
        with MicroBatcher(gbm, max_batch=10_000, max_delay=600.0) as mb:
            good = [mb.submit(r) for r in rows[:3]]
            bad = mb.submit(np.zeros(rows.shape[1] + 2))  # wrong feature count
            good += [mb.submit(r) for r in rows[3:]]
            mb.flush()
            with pytest.raises(ValueError):
                bad.result(timeout=5.0)
            out = np.array([t.result(timeout=5.0) for t in good])
        assert np.array_equal(out, np.array([gbm.predict(r[None, :])[0] for r in rows]))

    def test_unsupported_kind_fails_only_its_tickets(self, data, gbm):
        """predict_dist against a GBM errors those tickets, not the predicts."""
        rows = _data(n=4, seed=15)[0]
        with MicroBatcher(gbm, max_batch=10_000, max_delay=600.0) as mb:
            tp = [mb.submit(r, kind="predict") for r in rows]
            td = mb.submit(rows[0], kind="predict_dist")  # GBM has no predict_dist
            mb.flush()
            with pytest.raises(AttributeError):
                td.result(timeout=5.0)
            out = np.array([t.result(timeout=5.0) for t in tp])
        assert np.array_equal(out, np.array([gbm.predict(r[None, :])[0] for r in rows]))

    def test_close_completes_all_accepted_requests(self, data, gbm):
        """close() waits for in-flight deadline flushes: every accepted
        ticket is done when it returns, even mid-scoring."""
        rows = _data(n=5, seed=17)[0]
        mb = MicroBatcher(gbm, max_batch=10_000, max_delay=0.005)
        tickets = [mb.submit(r) for r in rows]
        time.sleep(0.02)  # let the deadline timer drain and spawn a flusher
        tickets += [mb.submit(r) for r in rows]  # a second, still-pending wave
        mb.close()
        assert all(t.done() for t in tickets)
        out = np.array([t.result() for t in tickets])
        ref = np.array([gbm.predict(r[None, :])[0] for r in rows])
        assert np.array_equal(out, np.concatenate([ref, ref]))

    def test_close_waits_for_inline_size_flush(self, data, gbm):
        """close() must also wait for a size-triggered flush scoring inline
        in another submitter thread, not just the deadline threads."""
        rows = _data(n=2, seed=18)[0]

        class Slow:
            def predict(self, X):
                time.sleep(0.15)
                return gbm.predict(X)

        mb = MicroBatcher(Slow(), max_batch=2, max_delay=600.0)
        tickets: list = []
        worker = threading.Thread(
            target=lambda: tickets.extend(mb.submit(r) for r in rows)
        )
        worker.start()
        time.sleep(0.05)  # worker is now inside the inline size flush
        mb.close()  # must block until that flush finishes scoring
        worker.join(timeout=5.0)
        assert len(tickets) == 2 and all(t.done() for t in tickets)
        assert np.array_equal(
            np.array([t.result() for t in tickets]),
            np.array([gbm.predict(r[None, :])[0] for r in rows]),
        )

    def test_model_failure_gives_each_ticket_its_own_exception(self, data):
        """Regression: a model-resolution failure completed every ticket of
        the flush with the *same* exception instance, so concurrent
        result() callers raced on its __traceback__ mutation."""
        rows = _data(n=3, seed=19)[0]

        def down():
            raise RuntimeError("model store down")

        with MicroBatcher(down, max_batch=10_000, max_delay=600.0) as mb:
            tickets = [mb.submit(r) for r in rows]
            mb.flush()
            for t in tickets:
                with pytest.raises(RuntimeError, match="model store down"):
                    t.result(timeout=5.0)
            errors = [t._error for t in tickets]
            assert len({id(e) for e in errors}) == len(errors)  # all private copies

    def test_set_limits_shrink_fires_size_flush(self, data, gbm):
        """Lowering max_batch to (or below) the pending row count must act
        like any other size trigger: the caller scores the batch inline."""
        rows = _data(n=6, seed=20)[0]
        with MicroBatcher(gbm, max_batch=10_000, max_delay=600.0) as mb:
            tickets = [mb.submit(r) for r in rows]
            assert mb.counters()["batches"] == 0
            mb.set_limits(max_batch=4)
            assert all(t.done() for t in tickets)
            assert mb.counters()["size_flushes"] == 1
            out = np.array([t.result() for t in tickets])
        assert np.array_equal(out, np.array([gbm.predict(r[None, :])[0] for r in rows]))

    def test_set_limits_retargets_pending_deadlines(self, data, gbm):
        """A new max_delay applies to already-queued tickets (recomputed
        from their enqueue time), so a tuner can rescue a long deadline."""
        row = _data(n=1, seed=21)[0][0]
        with MicroBatcher(gbm, max_batch=10_000, max_delay=600.0) as mb:
            ticket = mb.submit(row)
            mb.set_limits(max_delay=0.02)
            assert ticket.result(timeout=5.0) == gbm.predict(row[None, :])[0]
            assert mb.counters()["deadline_flushes"] == 1

    def test_set_limits_validates(self, gbm):
        with MicroBatcher(gbm, max_batch=4, max_delay=0.01) as mb:
            with pytest.raises(ValueError):
                mb.set_limits(max_batch=0)
            with pytest.raises(ValueError):
                mb.set_limits(max_delay=0.0)

    def test_submit_after_close_raises(self, gbm):
        mb = MicroBatcher(gbm, max_batch=4, max_delay=0.01)
        mb.close()
        with pytest.raises(RuntimeError):
            mb.submit(np.zeros(6))

    def test_bad_kind_and_shape_rejected(self, gbm):
        with MicroBatcher(gbm, max_batch=4, max_delay=0.01) as mb:
            with pytest.raises(ValueError):
                mb.submit(np.zeros(6), kind="classify")
            with pytest.raises(ValueError):
                mb.submit(np.zeros((2, 2, 2)))

    def test_result_timeout_abandons_and_counts(self, data, gbm):
        """An expired ``result(timeout=)`` tombstones the ticket: the slot
        frees, later calls fail fast, and the batcher counts it."""
        X, _ = data
        with MicroBatcher(gbm, max_batch=1000, max_delay=600.0) as mb:
            ticket = mb.submit(X[0])
            with pytest.raises(TimeoutError):
                ticket.result(timeout=0.01)
            with pytest.raises(TimeoutError):
                ticket.result(timeout=0.01)  # fails fast, no re-block
            assert mb.abandoned == 1

    def test_timeout_racing_flush_returns_the_computed_value(self, data, gbm):
        """A flush can complete the ticket between ``result``'s wait
        expiring and the abandon finding it already drained (a no-op).
        The computed, counted, cached value must be handed over — not
        discarded behind a deadline error.  The stand-in owner pins the
        exact interleaving: the flush wins the race window."""
        X, _ = data
        with MicroBatcher(gbm, max_batch=1000, max_delay=600.0) as mb:
            ticket = mb.submit(X[0])
            ref = float(gbm.predict(X[0][None, :])[0])

            class FlushFirst:
                def _abandon(self, t):
                    mb.flush()      # completes the ticket...
                    mb._abandon(t)  # ...so the real abandon is a no-op

            ticket._owner = FlushFirst()
            assert ticket.result(timeout=0.01) == ref
            assert mb.abandoned == 0  # the value was delivered, not dropped


# ---------------------------------------------------------------------- #
class TestPredictionCache:
    def test_lru_eviction_counts(self):
        cache = PredictionCache(max_entries=3)
        for i in range(5):
            cache.put(("m", 1, "predict", bytes([i])), float(i))
        assert len(cache) == 3
        assert cache.evictions == 2
        found, _ = cache.get(("m", 1, "predict", bytes([0])))
        assert not found  # oldest evicted

    def test_invalidate_by_name(self):
        cache = PredictionCache()
        cache.put(("a", 1, "predict", b"x"), 1.0)
        cache.put(("b", 1, "predict", b"x"), 2.0)
        assert cache.invalidate("a") == 1
        assert cache.get(("a", 1, "predict", b"x"))[0] is False
        assert cache.get(("b", 1, "predict", b"x"))[0] is True

    def test_invalidate_ignores_foreign_keys(self):
        """Standalone users may key on anything; name-matching must not
        crash on ints or prefix-match plain strings."""
        cache = PredictionCache()
        cache.put(42, "int-keyed")
        cache.put("model-x", "str-keyed")
        assert cache.invalidate("m") == 0  # no tuple keys match; nothing dropped
        assert cache.get(42)[0] and cache.get("model-x")[0]
        assert cache.invalidate(None) == 2  # full clear still takes everything

    def test_cached_arrays_readonly(self):
        cache = PredictionCache()
        arr = np.zeros(3)
        cache.put(("m", 1, "predict", b"k"), arr)
        assert not arr.flags.writeable


class TestInferenceService:
    def test_duplicate_requests_hit_cache(self, data):
        gbm = _fresh_gbm(data)  # registering freezes+seals: never the shared fixture
        reg = ModelRegistry()
        reg.register("m", gbm, promote=True)
        row = _data(n=1, seed=10)[0][0]
        with InferenceService(reg, "m", max_batch=4, max_delay=0.01) as svc:
            p1 = svc.predict(row, timeout=5.0)
            p2 = svc.predict(row, timeout=5.0)
            stats = svc.stats()
        assert p1 == p2 == gbm.predict(row[None, :])[0]
        assert stats.cache_hits == 1
        assert stats.cache_misses == 1
        assert stats.hit_rate == 0.5

    def test_promote_invalidates_and_switches_model(self, data):
        m1, m2 = _fresh_gbm(data, 0), _fresh_gbm(data, 1, n_estimators=10)
        reg = ModelRegistry()
        reg.register("m", m1, promote=True)
        reg.register("m", m2)
        row = _data(n=1, seed=11)[0][0]
        with InferenceService(reg, "m", max_batch=4, max_delay=0.01) as svc:
            p1 = svc.predict(row, timeout=5.0)
            reg.promote("m", 2)
            assert svc.stats().cache_invalidations >= 1
            p2 = svc.predict(row, timeout=5.0)
            reg.rollback("m")
            p3 = svc.predict(row, timeout=5.0)
        assert p1 == m1.predict(row[None, :])[0]
        assert p2 == m2.predict(row[None, :])[0]
        assert p1 != p2  # different models, different answers
        assert p3 == p1  # rollback restores v1 numbers exactly

    def test_promote_between_submit_and_flush_never_caches_stale(self, data):
        """A result scored by a different version than the submit-time key
        must not be cached — otherwise a rollback could hit it later."""
        m1, m2 = _fresh_gbm(data, 0), _fresh_gbm(data, 1, n_estimators=10)
        reg = ModelRegistry()
        reg.register("m", m1, promote=True)
        reg.register("m", m2)
        row = _data(n=1, seed=13)[0][0]
        with InferenceService(reg, "m", max_batch=10_000, max_delay=600.0) as svc:
            ticket = svc.submit(row)      # key carries v1
            reg.promote("m", 2)           # lands before the flush
            svc.flush()                   # scored by v2 (flush-time resolution)
            assert ticket.result(5.0) == m2.predict(row[None, :])[0]
            assert len(svc.cache) == 0    # v2's number never filed under v1's key

    def test_close_deregisters_listener(self, data):
        reg = ModelRegistry()
        reg.register("m", _fresh_gbm(data), promote=True)
        svc = InferenceService(reg, "m", max_batch=4, max_delay=0.01)
        assert len(reg._listeners) == 1
        svc.close()
        assert reg._listeners == []

    def test_unregister_invalidates_dropped_version_cache_entries(self, data):
        """Regression: without the unregister notification, a dropped
        version's cache entries lingered until LRU eviction — a leak in
        exactly the continuous-retrain loops unregister exists for."""
        reg = ModelRegistry()
        reg.register("m", _fresh_gbm(data, 0), promote=True)
        reg.register("m", _fresh_gbm(data, 1), promote=True)
        with InferenceService(reg, "m", max_batch=4, max_delay=0.01) as svc:
            svc.cache.put(("m", 1, "predict", b"retired"), 1.0)
            svc.cache.put(("m", 2, "predict", b"live"), 2.0)
            reg.unregister("m", 1)
            assert svc.cache.get(("m", 1, "predict", b"retired"))[0] is False
            # surgical: the production version's warm entries survive
            assert svc.cache.get(("m", 2, "predict", b"live"))[0] is True

    def test_mean_latency_counts_only_completed_requests(self, data):
        """Regression: total_latency_s only accumulates when a flush
        finishes, but the mean divided by all non-cache-hit submissions —
        pending tickets understated latency under load."""
        gbm = _fresh_gbm(data)
        reg = ModelRegistry()
        reg.register("m", gbm, promote=True)
        rows = _data(n=5, seed=22)[0]
        svc = InferenceService(reg, "m", max_batch=10_000, max_delay=600.0)
        try:
            done = [svc.submit(r) for r in rows[:3]]
            svc.flush()
            for t in done:
                t.result(timeout=5.0)
            svc.submit(rows[3])  # still pending at snapshot time
            svc.submit(rows[4])
            stats = svc.stats()
            assert stats.requests == 5
            assert stats.completed == 3
            assert stats.total_latency_s > 0
            assert stats.mean_latency_ms == pytest.approx(1e3 * stats.total_latency_s / 3)
        finally:
            svc.close()

    def test_stats_accumulate(self, data):
        forest = _fresh_forest(data)  # fresh: registering seals the model
        reg = ModelRegistry()
        reg.register("f", forest, promote=True)
        rows = _data(n=40, seed=12)[0]
        with InferenceService(reg, "f", max_batch=16, max_delay=0.01) as svc:
            tickets = [svc.submit(r) for r in rows]
            svc.flush()
            for t in tickets:
                t.result(timeout=5.0)
            stats = svc.stats()
        assert stats.requests == 40
        assert stats.rows == 40
        assert stats.batches >= 2
        assert stats.mean_batch_rows > 0
        assert stats.total_latency_s > 0
        assert "requests=40" in stats.summary()

    def test_abandoned_flows_into_server_stats(self, data):
        """A result() timeout's tombstone is an operational signal — it
        must reach ServerStats (field + summary), not stay a private
        batcher counter."""
        forest = _fresh_forest(data)
        reg = ModelRegistry()
        reg.register("f", forest, promote=True)
        rows = _data(n=3, seed=13)[0]
        with InferenceService(reg, "f", max_batch=1000, max_delay=600.0) as svc:
            tickets = [svc.submit(r) for r in rows]
            for t in tickets[:2]:
                with pytest.raises(TimeoutError):
                    t.result(timeout=0.01)
            stats = svc.stats()
            assert stats.abandoned == 2
            assert "abandoned=2" in stats.summary()
            svc.flush()
            assert tickets[2].result(timeout=5.0) == float(
                forest.predict(rows[2][None, :])[0]
            )


# ---------------------------------------------------------------------- #
class TestPackReuseAcrossVersions:
    def test_gbm_truncated_shares_arena(self, data, gbm):
        X, _ = data
        full_pack = gbm._ensure_pack()
        trunc = gbm.truncated(10)
        assert len(trunc.trees_) == 10
        assert trunc._pack.n_trees == 10
        for a, b in (
            (trunc._pack.value, full_pack.value),
            (trunc._pack.left, full_pack.left),
            (trunc._pack.feature, full_pack.feature),
        ):
            assert np.shares_memory(a, b)
        # bit-identical to the staged prediction at that round
        assert np.array_equal(trunc.predict(X[:100]), gbm.staged_predict(X[:100])[9])

    def test_forest_truncated_shares_arena(self, data, forest):
        X, _ = data
        trunc = forest.truncated(12)
        assert np.shares_memory(trunc._pack.value, forest._ensure_pack().value)
        codes = forest.binner_.transform(np.asarray(X[:80], dtype=float))
        ref = np.stack([t.predict(codes) for t in forest.trees_[:12]])
        assert np.array_equal(trunc.predict(X[:80]), ref.mean(axis=0))

    def test_truncated_bounds_checked(self, gbm, forest):
        with pytest.raises(ValueError):
            gbm.truncated(len(gbm.trees_) + 1)
        with pytest.raises(ValueError):
            gbm.truncated(-1)
        with pytest.raises(ValueError):
            forest.truncated(0)  # a forest mean needs at least one tree

    def test_gbm_truncated_to_zero_is_base_score(self, data, gbm):
        """GBM prefix of zero rounds is the base-score model (well-defined)."""
        X, _ = data
        empty = gbm.truncated(0)
        assert np.array_equal(empty.predict(X[:20]), np.full(20, gbm.base_score_))

    def test_registry_of_truncated_versions(self, data):
        """Staged rollout of prefix ensembles: v2 shares v1's arena."""
        X, _ = data
        parent = _fresh_gbm(data)
        reg = ModelRegistry()
        reg.register("m", parent, promote=True)
        v2 = reg.register("m", parent.truncated(8))
        trunc = reg.get("m", version=v2)
        assert np.shares_memory(trunc._pack.value, parent._pack.value)
        assert np.array_equal(trunc.predict(X[:60]), parent.staged_predict(X[:60])[7])
