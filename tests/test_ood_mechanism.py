"""Tests for the §VIII OoD machinery: gap threshold, novel-family mechanics.

These encode the failure modes we debugged while reproducing Fig. 5 (see
DESIGN.md §7): feature novelty alone is not enough (models extrapolate the
envelope fine), and family-level offsets alone are not enough (boosting
memorizes them through leaked siblings).  The generative mechanism must
combine out-of-envelope features with variance-dominated per-variant
deviations — and these tests pin all of that down.
"""

import numpy as np
import pytest

from repro.config import theta_config
from repro.ml.ensemble import UncertaintyDecomposition
from repro.simulator.applications import FAMILIES, OOD_FAMILIES, sample_variants
from repro.simulator.engine import simulate
from repro.taxonomy.litmus_ood import ood_attribution, shoulder_threshold


class TestShoulderThreshold:
    def test_finds_bimodal_gap(self):
        rng = np.random.default_rng(0)
        eu = np.concatenate([rng.uniform(0.01, 0.1, 990), rng.uniform(1.0, 2.0, 10)])
        thr = shoulder_threshold(eu)
        assert 0.1 < thr < 1.0  # inside the gap

    def test_falls_back_to_quantile_without_gap(self):
        rng = np.random.default_rng(1)
        eu = rng.lognormal(0.0, 0.3, 2000)  # smooth unimodal tail
        thr = shoulder_threshold(eu, quantile=0.99)
        assert thr == pytest.approx(np.quantile(eu, 0.99))

    def test_gap_must_be_in_search_window(self):
        # a gap in the *middle* of the distribution must not trigger
        eu = np.concatenate([np.full(500, 0.01), np.full(500, 1.0)])
        thr = shoulder_threshold(eu, quantile=0.99, gap_search_frac=0.03)
        assert thr >= 1.0  # quantile fallback lands in the upper mode

    def test_tiny_samples_do_not_crash(self):
        thr = shoulder_threshold(np.array([0.1, 0.2, 5.0]))
        assert np.isfinite(thr)


class TestOodAttribution:
    def _decomp(self, eu_std):
        n = eu_std.size
        return UncertaintyDecomposition(
            mean=np.zeros(n), aleatory=np.full(n, 0.01), epistemic=eu_std**2
        )

    def test_perfect_separation_tags_exactly_the_novel(self):
        rng = np.random.default_rng(2)
        eu = np.concatenate([rng.uniform(0.01, 0.05, 500), np.full(5, 2.0)])
        y = np.zeros(505)
        pred = np.zeros(505)
        pred[-5:] = 1.0  # novel jobs carry all the error
        ood = ood_attribution(self._decomp(eu), y, pred_dex=pred)
        assert ood.is_ood.sum() == 5
        assert np.all(ood.is_ood[-5:])
        assert ood.error_share == pytest.approx(1.0)
        assert ood.enrichment > 10.0

    def test_explicit_threshold_respected(self):
        eu = np.linspace(0.0, 1.0, 100)
        ood = ood_attribution(self._decomp(eu), np.zeros(100), threshold=0.9)
        # linspace(0, 1, 100) has step 1/99: ten values are >= 0.9
        assert ood.is_ood.sum() == 10

    def test_zero_error_edge_case(self):
        eu = np.linspace(0.0, 1.0, 50)
        ood = ood_attribution(self._decomp(eu), np.zeros(50), pred_dex=np.zeros(50))
        assert ood.error_share == 0.0
        assert ood.enrichment == 0.0


class TestNovelFamilyMechanics:
    def test_in_distribution_families_have_zero_offset(self):
        rng = np.random.default_rng(0)
        for name in FAMILIES:
            params = sample_variants(name, rng, 50)
            np.testing.assert_array_equal(params["fa_offset"], 0.0)

    def test_novel_families_have_variance_dominated_offsets(self):
        rng = np.random.default_rng(1)
        for name, fam in OOD_FAMILIES.items():
            params = sample_variants(name, rng, 400)
            off = params["fa_offset"]
            assert np.std(off) > abs(np.mean(off)), name
            assert np.std(off) == pytest.approx(fam.fa_sigma_dex, rel=0.2)

    def test_novel_features_outside_training_envelope(self):
        rng = np.random.default_rng(2)
        in_dist_nprocs_max = max(
            sample_variants(n, rng, 300)["nprocs"].max() for n in FAMILIES
        )
        lammps = sample_variants("lammps_novel", rng, 100)
        assert lammps["nprocs"].min() > in_dist_nprocs_max

        in_dist_bytes_max = max(
            sample_variants(n, rng, 300)["total_bytes"].max() for n in FAMILIES
        )
        dl = sample_variants("dl_ckpt_novel", rng, 100)
        assert dl["total_bytes"].min() > in_dist_bytes_max

    def test_offsets_flow_into_ground_truth(self):
        sim = simulate(theta_config(n_jobs=2500))
        novel = sim.jobs.is_ood
        assert novel.any()
        # fa_offset recorded per job and non-trivial for novel jobs only
        assert np.all(sim.jobs.fa_offset[~novel] == 0.0)
        assert np.std(sim.jobs.fa_offset[novel]) > 0.2

    def test_novel_variants_are_mostly_one_offs(self):
        sim = simulate(theta_config(n_jobs=12000))
        jobs = sim.jobs
        novel_variants, counts = np.unique(
            jobs.variant_id[jobs.is_ood], return_counts=True
        )
        assert novel_variants.size >= 10
        assert np.mean(counts == 1) > 0.5
        assert counts.max() <= 3

    def test_novel_jobs_only_after_deployment_cutoff(self):
        sim = simulate(theta_config(n_jobs=6000))
        jobs = sim.jobs
        cutoff = sim.config.workload.start_epoch + sim.deployment_cutoff_time
        assert np.all(jobs.start_time[jobs.is_ood] >= cutoff - 1.0)
