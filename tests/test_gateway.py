"""Tests for the multi-model serving gateway and adaptive batch tuner.

The gateway adds routing, never arithmetic: every name's answers must be
bit-identical (``np.array_equal``) to direct predicts on that name's
production model, no matter how the per-name streams interleave or how
badly one name's clients misbehave.  The tuner is exercised against fake
batchers whose latency is a pure function of their limits, plus a fake
clock — its AIMD trajectory is fully deterministic and sleeps nowhere.
"""

import sys
import threading

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.gbm import GradientBoostingRegressor
from repro.serve import (
    AdaptiveBatchTuner,
    GatewayStats,
    ModelRegistry,
    ServerStats,
    ServingGateway,
)

pytestmark = [pytest.mark.serve, pytest.mark.gateway]


def _data(n=900, d=6, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n, d))
    y = np.sin(2 * X[:, 0]) + X[:, 1] * X[:, 2] + 0.05 * rng.normal(0, 1, n)
    return X, y


@pytest.fixture(scope="module")
def data():
    return _data()


@pytest.fixture(scope="module")
def gbm(data):
    X, y = data
    return GradientBoostingRegressor(n_estimators=25, max_depth=4, loss="squared").fit(X, y)


@pytest.fixture(scope="module")
def forest(data):
    X, y = data
    return RandomForestRegressor(n_estimators=30, max_depth=9, random_state=1).fit(X, y)


def _registry(gbm, forest):
    reg = ModelRegistry()
    reg.register("gbm", gbm, promote=True)
    reg.register("forest", forest, promote=True)
    return reg


# ---------------------------------------------------------------------- #
class TestServingGateway:
    def test_routes_two_names_bit_identical(self, data, gbm, forest):
        """The acceptance gate: an interleaved two-name stream through the
        gateway matches direct per-model predicts exactly."""
        reg = _registry(gbm, forest)
        models = {"gbm": gbm, "forest": forest}
        rows = _data(n=120, seed=3)[0]
        names = ["gbm" if i % 3 else "forest" for i in range(len(rows))]
        with ServingGateway(reg, max_batch=32, max_delay=0.02) as gw:
            tickets = [(n, gw.submit(n, r)) for n, r in zip(names, rows)]
            gw.flush()
            out = {"gbm": [], "forest": []}
            for n, t in tickets:
                out[n].append(t.result(timeout=10.0))
            # independent per-name batchers, one per routed name
            batchers = gw.batchers()
            assert set(batchers) == {"gbm", "forest"}
            assert batchers["gbm"] is not batchers["forest"]
        for name in ("gbm", "forest"):
            ref = np.array([
                models[name].predict(r[None, :])[0]
                for n, r in zip(names, rows) if n == name
            ])
            assert np.array_equal(np.array(out[name]), ref)

    def test_lazy_creation_and_unknown_name(self, data, gbm, forest):
        reg = _registry(gbm, forest)
        row = _data(n=1, seed=4)[0][0]
        with ServingGateway(reg, max_batch=4, max_delay=0.01) as gw:
            assert gw.names() == []
            gw.predict("gbm", row, timeout=10.0)
            assert gw.names() == ["gbm"]  # only the touched name is live
            with pytest.raises(LookupError):
                gw.submit("nope", row)
            assert gw.names() == ["gbm"]  # the failed route created nothing

    def test_routing_isolation_of_malformed_traffic(self, data, gbm, forest):
        """One name's wrong-width clients must fail alone: the other
        name's co-scheduled stream stays bit-identical and error-free."""
        reg = _registry(gbm, forest)
        rows = _data(n=40, seed=5)[0]
        with ServingGateway(reg, max_batch=10_000, max_delay=600.0) as gw:
            good_f = [gw.submit("forest", r) for r in rows[:20]]
            bad = [gw.submit("gbm", np.zeros(rows.shape[1] + 3)) for _ in range(4)]
            good_g = [gw.submit("gbm", r) for r in rows[20:]]
            gw.flush()
            for t in bad:
                with pytest.raises(ValueError):
                    t.result(timeout=10.0)
            out_f = np.array([t.result(timeout=10.0) for t in good_f])
            out_g = np.array([t.result(timeout=10.0) for t in good_g])
        assert np.array_equal(
            out_f, np.array([forest.predict(r[None, :])[0] for r in rows[:20]])
        )
        assert np.array_equal(
            out_g, np.array([gbm.predict(r[None, :])[0] for r in rows[20:]])
        )

    def test_tap_error_count_exact_under_contention(self, data, gbm, forest):
        """Swallowed tap exceptions increment under a dedicated lock: N
        threads hammering a raising tap must count every swallow exactly.
        The bare ``+=`` read-modify-write it replaces was only
        *incidentally* safe on GIL builds (no eval-breaker checkpoint
        lands between the attribute load and store); the lock makes the
        exactness this test pins an actual guarantee — including on
        free-threaded builds, where the bare form loses increments and
        silently understates monitoring breakage."""
        reg = _registry(gbm, forest)

        class Raising:
            def on_request(self, name, row, kind):
                raise RuntimeError("boom")

        row = np.zeros(6)
        n_threads, per_thread = 8, 400
        with ServingGateway(reg, max_batch=4, max_delay=0.01) as gw:
            gw.add_tap(Raising())
            barrier = threading.Barrier(n_threads)

            def worker():
                barrier.wait()
                for _ in range(per_thread):
                    gw._notify_request("gbm", row, "predict")

            old = sys.getswitchinterval()
            sys.setswitchinterval(1e-6)  # force interleaving inside +=
            try:
                threads = [threading.Thread(target=worker) for _ in range(n_threads)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
            finally:
                sys.setswitchinterval(old)
            assert gw.tap_errors == n_threads * per_thread

    def test_configure_overrides_apply_at_creation(self, data, gbm, forest):
        reg = _registry(gbm, forest)
        with ServingGateway(reg, max_batch=256, max_delay=0.005) as gw:
            gw.configure("gbm", max_batch=16, max_delay=0.5, cache_entries=32)
            svc = gw.service("gbm")
            assert svc.batcher.max_batch == 16
            assert svc.batcher.max_delay == 0.5
            assert svc.cache.max_entries == 32
            assert gw.service("forest").batcher.max_batch == 256  # defaults intact

    def test_configure_live_service_mutates_limits_only(self, data, gbm, forest):
        reg = _registry(gbm, forest)
        with ServingGateway(reg, max_batch=256, max_delay=0.005) as gw:
            svc = gw.service("gbm")
            gw.configure("gbm", max_batch=64, max_delay=0.01)
            assert svc.batcher.max_batch == 64
            assert svc.batcher.max_delay == 0.01
            with pytest.raises(ValueError, match="live service"):
                gw.configure("gbm", cache_entries=8)
            with pytest.raises(ValueError, match="unknown config"):
                gw.configure("forest", batch_size=8)

    def test_configure_rejects_bad_values_eagerly(self, data, gbm, forest):
        """Invalid overrides must fail at configure time, not on the first
        request for the name — and must not persist past the raise."""
        reg = _registry(gbm, forest)
        with ServingGateway(reg, max_batch=32, max_delay=0.005) as gw:
            with pytest.raises(ValueError, match="max_batch"):
                gw.configure("gbm", max_batch=0)
            with pytest.raises(ValueError, match="max_delay"):
                gw.configure("gbm", max_delay=0.0)
            with pytest.raises(ValueError, match="cache_entries"):
                gw.configure("gbm", cache_entries=0)
            assert gw.service("gbm").batcher.max_batch == 32  # defaults intact

    def test_flush_of_idle_name_creates_no_service(self, data, gbm, forest):
        reg = _registry(gbm, forest)
        with ServingGateway(reg, max_batch=4, max_delay=0.01) as gw:
            assert gw.flush("forest") == 0
            assert gw.flush("never-registered") == 0
            assert gw.names() == []  # nothing was stood up just to flush

    def test_promote_rollback_through_gateway(self, data, gbm, forest):
        """Stage changes stay a registry concern; the gateway observes
        them at the next batch boundary like any single-name service."""
        X, y = data
        reg = _registry(gbm, forest)
        v2_model = GradientBoostingRegressor(
            n_estimators=10, max_depth=3, loss="squared", random_state=7
        ).fit(X, y)
        v2 = reg.register("gbm", v2_model)
        row = _data(n=1, seed=6)[0][0]
        with ServingGateway(reg, max_batch=4, max_delay=0.01) as gw:
            p1 = gw.predict("gbm", row, timeout=10.0)
            f1 = gw.predict("forest", row, timeout=10.0)
            reg.promote("gbm", v2)
            p2 = gw.predict("gbm", row, timeout=10.0)
            reg.rollback("gbm")
            p3 = gw.predict("gbm", row, timeout=10.0)
            f2 = gw.predict("forest", row, timeout=10.0)
        assert p1 == gbm.predict(row[None, :])[0]
        assert p2 == v2_model.predict(row[None, :])[0]
        assert p3 == p1
        assert f1 == f2 == forest.predict(row[None, :])[0]  # other name untouched

    def test_aggregate_stats_match_per_name_sums(self, data, gbm, forest):
        reg = _registry(gbm, forest)
        rows = _data(n=30, seed=7)[0]
        with ServingGateway(reg, max_batch=8, max_delay=0.01) as gw:
            for r in rows[:20]:
                gw.predict("gbm", r, timeout=10.0)
            for r in rows[20:]:
                gw.predict("forest", r, timeout=10.0)
            gw.predict("gbm", rows[0], timeout=10.0)  # one cache hit
            stats = gw.stats()
        assert set(stats.per_name) == {"gbm", "forest"}
        total = stats.total
        import dataclasses

        for f in dataclasses.fields(ServerStats):
            if f.name == "latency_samples":  # concatenates, not sums
                continue
            assert getattr(total, f.name) == pytest.approx(
                sum(getattr(s, f.name) for s in stats.per_name.values())
            )
        assert len(total.latency_samples) == sum(
            len(s.latency_samples) for s in stats.per_name.values()
        )
        assert total.requests == 31
        assert stats.per_name["gbm"].cache_hits == 1
        assert "TOTAL (2 models)" in stats.summary()

    def test_empty_gateway_stats(self):
        stats = GatewayStats(per_name={})
        assert stats.total.requests == 0
        assert stats.total.mean_latency_ms == 0.0

    def test_empty_rollups_every_ratio_defined(self):
        # the empty-total contract: a gateway/cluster that has served
        # nothing (or whose every shard is dead) reports 0.0 ratios —
        # never NaN, never ZeroDivisionError — and summaries render
        from repro.serve import ClusterStats
        from repro.serve.stats import sum_stats

        empty_total = sum_stats([])
        assert empty_total.hit_rate == 0.0
        assert empty_total.mean_batch_rows == 0.0
        assert empty_total.mean_latency_ms == 0.0
        assert "requests=0" in empty_total.summary()

        gw = GatewayStats(per_name={})
        assert gw.total.hit_rate == 0.0
        assert "TOTAL (0 models)" in gw.summary()

        cluster = ClusterStats(per_shard={})  # every shard dead/absent
        assert cluster.per_name == {}
        assert cluster.total.hit_rate == 0.0
        assert cluster.total.mean_latency_ms == 0.0
        assert "CLUSTER (0 shards" in cluster.summary()

    def test_single_dead_shard_rollup(self):
        # one live shard (the other died -> absent from per_shard): the
        # cluster rollup must equal the surviving shard's own numbers
        import dataclasses

        from repro.serve import ClusterStats

        live = ServerStats(
            requests=10, rows=10, batches=2, completed=10, size_flushes=1,
            deadline_flushes=1, manual_flushes=0, abandoned=1, cache_hits=4,
            cache_misses=6, cache_evictions=0, cache_invalidations=0,
            cache_entries=6, total_latency_s=0.05,
        )
        cluster = ClusterStats(per_shard={1: GatewayStats(per_name={"m": live})})
        assert set(cluster.per_name) == {"m"}
        for f in dataclasses.fields(ServerStats):
            assert getattr(cluster.total, f.name) == getattr(live, f.name)
        assert cluster.total.hit_rate == pytest.approx(0.4)
        # a name served by zero live shards simply isn't reported; the
        # total still carries the live shard's counters only
        empty_shard = ClusterStats(per_shard={0: GatewayStats(per_name={})})
        assert empty_shard.per_name == {}
        assert empty_shard.total.completed == 0
        assert empty_shard.total.mean_latency_ms == 0.0

    def test_close_tears_everything_down(self, data, gbm, forest):
        reg = _registry(gbm, forest)
        gw = ServingGateway(reg, max_batch=4, max_delay=0.01)
        row = _data(n=1, seed=8)[0][0]
        gw.predict("gbm", row, timeout=10.0)
        gw.predict("forest", row, timeout=10.0)
        assert len(reg._listeners) == 2
        gw.close()
        assert reg._listeners == []  # every service deregistered
        with pytest.raises(RuntimeError, match="closed"):
            gw.submit("gbm", row)
        gw.close()  # idempotent


# ---------------------------------------------------------------------- #
class _FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class _FakeBatcher:
    """Counter-compatible stand-in whose latency is a pure function of its
    limits, making the tuner's trajectory fully deterministic."""

    def __init__(self, max_batch=256, max_delay=0.05, latency_ms=None):
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._latency_ms = latency_ms or (lambda b, d: 0.5e3 * d + 0.02 * b)
        self.completed = 0
        self.total_latency_s = 0.0

    def serve_window(self, n=100):
        self.completed += n
        self.total_latency_s += n * self._latency_ms(self.max_batch, self.max_delay) / 1e3

    def counters(self):
        return {"completed": self.completed, "total_latency_s": self.total_latency_s}

    def set_limits(self, max_batch=None, max_delay=None):
        if max_batch is not None:
            self.max_batch = int(max_batch)
        if max_delay is not None:
            self.max_delay = float(max_delay)


class TestAdaptiveBatchTuner:
    def test_backs_off_to_lower_bounds_when_over_target(self):
        fb = _FakeBatcher(max_batch=256, max_delay=0.05, latency_ms=lambda b, d: 100.0)
        clock = _FakeClock()
        tuner = AdaptiveBatchTuner({"m": fb}, target_latency_ms=5.0, clock=clock)
        fb.serve_window()
        tuner.step()  # first observation: baseline only, no decision
        trail = []
        for _ in range(10):
            fb.serve_window()
            clock.advance(1.0)
            (decision,) = tuner.step()
            assert decision.direction == "backoff"
            trail.append((fb.max_batch, fb.max_delay))
        assert trail == sorted(trail, reverse=True)  # monotone retreat
        assert fb.max_batch == 8                     # clamped at batch_bounds[0]
        assert fb.max_delay == pytest.approx(2e-4)   # clamped at delay_bounds[0]

    def test_grows_toward_upper_bounds_when_under_target(self):
        fb = _FakeBatcher(max_batch=8, max_delay=2e-4, latency_ms=lambda b, d: 0.1)
        clock = _FakeClock()
        tuner = AdaptiveBatchTuner({"m": fb}, target_latency_ms=5.0, clock=clock)
        fb.serve_window()
        tuner.step()
        trail = []
        for _ in range(60):
            fb.serve_window()
            clock.advance(1.0)
            (decision,) = tuner.step()
            assert decision.direction == "grow"
            trail.append((fb.max_batch, fb.max_delay))
        assert trail == sorted(trail)               # monotone growth
        assert fb.max_batch == 8 + 60 * 16          # additive: +batch_step per window
        assert fb.max_delay == pytest.approx(0.05)  # clamped at delay_bounds[1]

    def test_holds_without_new_completions(self):
        fb = _FakeBatcher(max_batch=64, max_delay=0.01)
        clock = _FakeClock()
        tuner = AdaptiveBatchTuner({"m": fb}, target_latency_ms=5.0, clock=clock)
        fb.serve_window()
        tuner.step()
        clock.advance(1.0)
        (decision,) = tuner.step()  # no traffic since baseline
        assert decision.direction == "hold"
        assert (fb.max_batch, fb.max_delay) == (64, 0.01)

    def test_converges_near_latency_target(self):
        """From far above target, the AIMD loop settles into an oscillation
        band around it — the 'provably moves toward the target' gate."""
        fb = _FakeBatcher(max_batch=64, max_delay=0.05)  # starts ~26ms mean
        clock = _FakeClock()
        target = 5.0
        tuner = AdaptiveBatchTuner({"m": fb}, target_latency_ms=target, clock=clock)
        fb.serve_window()
        tuner.step()
        window_lat = []
        for _ in range(40):
            fb.serve_window(200)
            clock.advance(1.0)
            (decision,) = tuner.step()
            window_lat.append(decision.window_latency_ms)
        assert window_lat[0] > 4 * target  # really did start far away
        assert all(0.3 * target <= lat <= 1.7 * target for lat in window_lat[-10:])
        assert 8 <= fb.max_batch <= 4096
        assert 2e-4 <= fb.max_delay <= 0.05

    def test_maybe_step_honors_interval(self):
        fb = _FakeBatcher()
        clock = _FakeClock()
        tuner = AdaptiveBatchTuner({"m": fb}, interval_s=1.0, clock=clock)
        assert tuner.maybe_step() is not None  # first call establishes baseline
        clock.advance(0.5)
        assert tuner.maybe_step() is None      # inside the interval
        clock.advance(0.6)
        assert tuner.maybe_step() is not None

    def test_new_names_join_the_control_loop(self):
        """A gateway's lazily-created services appear mid-flight; the tuner
        must baseline and then steer them without restarting."""
        batchers = {"a": _FakeBatcher(latency_ms=lambda b, d: 100.0)}
        clock = _FakeClock()
        tuner = AdaptiveBatchTuner(
            lambda: batchers, target_latency_ms=5.0, clock=clock
        )
        batchers["a"].serve_window()
        tuner.step()
        batchers["b"] = _FakeBatcher(latency_ms=lambda b, d: 100.0)  # appears later
        batchers["a"].serve_window()
        batchers["b"].serve_window()
        clock.advance(1.0)
        assert [d.name for d in tuner.step()] == ["a"]  # b only baselined
        batchers["b"].serve_window()
        clock.advance(1.0)
        decisions = {d.name: d for d in tuner.step()}
        assert decisions["b"].direction == "backoff"

    def test_steers_a_live_gateway_batcher(self, data, gbm, forest):
        """End-to-end on real counters: an unreachable latency target makes
        the tuner grow the live batcher's limits via set_limits."""
        reg = _registry(gbm, forest)
        # two waves of distinct rows — duplicates would answer from the
        # prediction cache and never reach the batcher's counters
        wave1, wave2 = np.split(_data(n=24, seed=9)[0], 2)
        with ServingGateway(reg, max_batch=8, max_delay=600.0) as gw:
            tuner = AdaptiveBatchTuner(gw, target_latency_ms=1e6)
            for r in wave1:
                gw.submit("gbm", r)
            gw.flush()
            tuner.step()  # baseline
            for r in wave2:
                gw.submit("gbm", r)
            gw.flush()
            decisions = tuner.step()
            assert [d.direction for d in decisions] == ["grow"]
            assert gw.batchers()["gbm"].max_batch == 8 + 16
            assert gw.batchers()["gbm"].max_delay == 0.05  # clamped into bounds

    def test_validates_parameters(self):
        fb = _FakeBatcher()
        with pytest.raises(ValueError):
            AdaptiveBatchTuner({"m": fb}, target_latency_ms=0.0)
        with pytest.raises(ValueError):
            AdaptiveBatchTuner({"m": fb}, backoff=1.0)
        with pytest.raises(ValueError):
            AdaptiveBatchTuner({"m": fb}, grow=1.0)
        with pytest.raises(ValueError):
            AdaptiveBatchTuner({"m": fb}, batch_bounds=(0, 10))
        with pytest.raises(ValueError):
            AdaptiveBatchTuner({"m": fb}, delay_bounds=(0.0, 0.01))

    def test_background_thread_start_stop(self, data, gbm, forest):
        """The production mode: a daemon thread stepping on a cadence.
        Determinism is not asserted here — just lifecycle hygiene."""
        reg = _registry(gbm, forest)
        with ServingGateway(reg, max_batch=8, max_delay=0.01) as gw:
            tuner = AdaptiveBatchTuner(gw, target_latency_ms=5.0, interval_s=0.01)
            with tuner:
                tuner.start()
                with pytest.raises(RuntimeError, match="already started"):
                    tuner.start()
                for r in _data(n=10, seed=10)[0]:
                    gw.predict("forest", r, timeout=10.0)
            tuner.stop()  # idempotent after context exit


# ---------------------------------------------------------------------- #
class TestCloseIdempotence:
    """Regression: teardown must be safe however many times — and from
    whatever thread of execution — it runs.  ``__del__`` and atexit hooks
    call close() on objects in arbitrary states, including ones whose
    ``__init__`` never finished; double-close used to rely on every caller
    being careful."""

    def test_gateway_double_close_and_del(self, data, gbm, forest):
        reg = _registry(gbm, forest)
        gw = ServingGateway(reg, max_batch=8, max_delay=0.01)
        assert gw.predict("gbm", _data(n=1, seed=5)[0][0], timeout=10.0) is not None
        gw.close()
        gw.close()  # second close: no re-teardown, no raise
        gw.__del__()  # finalizer path after an explicit close
        with pytest.raises(RuntimeError, match="closed"):
            gw.submit("gbm", _data(n=1, seed=5)[0][0])
        # close() deregistered the services' listeners exactly once: a
        # stage change afterwards must not touch the dead services
        v = reg.register("gbm", forest)
        reg.promote("gbm", v)

    def test_gateway_close_on_partially_constructed_instance(self):
        gw = object.__new__(ServingGateway)  # __init__ never ran
        gw.close()  # must be a silent no-op
        gw.__del__()

    def test_service_double_close(self, data, gbm, forest):
        from repro.serve import InferenceService

        reg = _registry(gbm, forest)
        svc = InferenceService(reg, "gbm", max_batch=8, max_delay=0.01)
        assert svc.predict(_data(n=1, seed=6)[0][0], timeout=10.0) is not None
        svc.close()
        svc.close()
        svc2 = object.__new__(InferenceService)  # half-built service
        svc2.close()

    def test_flush_after_close_is_harmless(self, data, gbm, forest):
        reg = _registry(gbm, forest)
        gw = ServingGateway(reg, max_batch=8, max_delay=0.01)
        gw.predict("forest", _data(n=1, seed=7)[0][0], timeout=10.0)
        gw.close()
        assert gw.flush() == 0  # nothing pending, nothing raised
