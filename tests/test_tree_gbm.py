"""Tests for the binned tree and gradient boosting machine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.binning import QuantileBinner
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.tree import BinnedTree


def _binned(X, bins=32):
    binner = QuantileBinner(bins).fit(X)
    return binner.transform(X)


class TestBinnedTree:
    def test_pure_partition_fit_exact(self):
        """A single split must recover a two-level step function."""
        X = np.linspace(0, 1, 200)[:, None]
        y = np.where(X[:, 0] < 0.5, -1.0, 1.0)
        codes = _binned(X)
        tree = BinnedTree(max_depth=2, min_child_weight=1.0, reg_lambda=1e-9)
        tree.fit(codes, grad=-y)  # grad = pred - y with pred = 0
        pred = tree.predict(codes)
        np.testing.assert_allclose(pred, y, atol=1e-6)

    def test_max_depth_zero_is_stump(self):
        X = np.random.default_rng(0).normal(0, 1, (100, 3))
        y = X[:, 0]
        tree = BinnedTree(max_depth=0).fit(_binned(X), grad=-y)
        assert tree.nodes_.n_nodes == 1
        assert tree.nodes_.depth == 0

    def test_depth_respected(self):
        rng = np.random.default_rng(0)
        X = rng.normal(0, 1, (500, 5))
        y = rng.normal(0, 1, 500)
        tree = BinnedTree(max_depth=3, min_child_weight=1.0).fit(_binned(X), grad=-y)
        assert tree.nodes_.depth <= 3

    def test_min_child_weight_blocks_splits(self):
        X = np.arange(10.0)[:, None]
        y = np.arange(10.0)
        tree = BinnedTree(max_depth=5, min_child_weight=100.0).fit(_binned(X), grad=-y)
        assert tree.nodes_.n_leaves == 1  # cannot split: children would be < 100

    def test_feature_mask_restricts(self):
        rng = np.random.default_rng(0)
        X = rng.normal(0, 1, (300, 2))
        y = X[:, 0]  # only feature 0 is informative
        mask = np.array([False, True])
        tree = BinnedTree(max_depth=4, min_child_weight=1.0).fit(_binned(X), -y, None, mask)
        used = tree.nodes_.feature[tree.nodes_.feature >= 0]
        assert np.all(used == 1) or used.size == 0

    def test_empty_feature_mask_raises(self):
        X = np.zeros((10, 2))
        with pytest.raises(ValueError):
            BinnedTree().fit(_binned(X), np.zeros(10), None, np.array([False, False]))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            BinnedTree().predict(np.zeros((2, 2), dtype=np.uint8))

    def test_leaf_values_are_newton_steps(self):
        """With unit hessians and λ=0, a stump's value is mean(-grad)."""
        grad = np.array([1.0, 2.0, 3.0])
        codes = np.zeros((3, 1), dtype=np.uint8)
        tree = BinnedTree(max_depth=0, reg_lambda=0.0).fit(codes, grad)
        assert tree.predict(codes)[0] == pytest.approx(-2.0)

    def test_explicit_hessians(self):
        grad = np.array([1.0, 1.0])
        hess = np.array([1.0, 3.0])
        codes = np.zeros((2, 1), dtype=np.uint8)
        tree = BinnedTree(max_depth=0, reg_lambda=0.0).fit(codes, grad, hess)
        assert tree.predict(codes)[0] == pytest.approx(-2.0 / 4.0)


def _structure(tree: BinnedTree):
    nd = tree.nodes_
    return nd.feature, nd.threshold, nd.left, nd.right


def _assert_same_structure(a: BinnedTree, b: BinnedTree):
    for arr_a, arr_b in zip(_structure(a), _structure(b)):
        np.testing.assert_array_equal(arr_a, arr_b)


class TestHistSubtractionMetamorphic:
    """Metamorphic relations for the sibling-subtraction training kernel.

    Each transformed input is grown twice — subtraction-derived histograms
    vs the full-rebin reference — and must yield *identical* structure;
    where the transformation provably preserves the split search
    (permutation, duplication with λ=0, appended constant feature), the
    structure must also match the tree grown on the original input.  The
    duplicated/tied cases land exactly on gain plateaus, exercising the
    tie-canonicalized argmax that keeps the two histogram paths aligned.
    """

    def _base(self, seed=0, n=800, d=5):
        rng = np.random.default_rng(seed)
        X = rng.normal(0, 1, (n, d))
        y = np.sin(X[:, 0]) + X[:, 1] * X[:, 2] + 0.1 * rng.normal(0, 1, n)
        return _binned(X), -y

    def _pair(self, codes, grad, **kw):
        sub = BinnedTree(hist_subtraction=True, **kw).fit(codes, grad)
        full = BinnedTree(hist_subtraction=False, **kw).fit(codes, grad)
        return sub, full

    def test_row_permutation_preserves_structure(self):
        codes, grad = self._base(seed=1)
        kw = dict(max_depth=7, min_child_weight=4.0)
        ref = BinnedTree(hist_subtraction=False, **kw).fit(codes, grad)
        perm = np.random.default_rng(2).permutation(codes.shape[0])
        sub_p, full_p = self._pair(codes[perm], grad[perm], **kw)
        _assert_same_structure(sub_p, full_p)   # subtraction == full rebin
        _assert_same_structure(sub_p, ref)      # and permutation is invisible
        np.testing.assert_allclose(sub_p.nodes_.value, ref.nodes_.value, rtol=1e-9, atol=1e-12)

    def test_duplicated_rows_preserve_structure(self):
        """Tiling every row twice doubles each (G, H) histogram entry; with
        λ=0 the gain is homogeneous of degree 1, so (with min_child_weight
        doubled to keep the valid-split masks aligned) the split search
        must resolve identically — up to the ulp plateau the
        tie-canonicalization absorbs."""
        codes, grad = self._base(seed=3)
        ref = BinnedTree(
            hist_subtraction=False, max_depth=6, min_child_weight=3.0, reg_lambda=0.0
        ).fit(codes, grad)
        codes2 = np.vstack([codes, codes])
        grad2 = np.concatenate([grad, grad])
        sub_d, full_d = self._pair(
            codes2, grad2, max_depth=6, min_child_weight=6.0, reg_lambda=0.0
        )
        _assert_same_structure(sub_d, full_d)
        _assert_same_structure(sub_d, ref)
        # leaf values are means of the same rows → unchanged up to summation order
        np.testing.assert_allclose(sub_d.nodes_.value, ref.nodes_.value, rtol=1e-9, atol=1e-12)

    def test_constant_feature_is_inert(self):
        """An all-constant column can never split (one child would be empty);
        appending one must leave the grown tree untouched."""
        codes, grad = self._base(seed=4)
        kw = dict(max_depth=6, min_child_weight=3.0)
        ref = BinnedTree(hist_subtraction=False, **kw).fit(codes, grad)
        codes_c = np.hstack([codes, np.full((codes.shape[0], 1), 2, dtype=np.uint8)])
        sub_c, full_c = self._pair(codes_c, grad, **kw)
        _assert_same_structure(sub_c, full_c)
        _assert_same_structure(sub_c, ref)  # appended column never chosen
        np.testing.assert_allclose(sub_c.nodes_.value, ref.nodes_.value, rtol=1e-9, atol=1e-12)

    def test_duplicated_feature_plateau_canonicalized(self):
        """Two byte-identical columns tie on every split gain — the plateau
        path must pick the first one in both histogram modes, at every
        node of the tree."""
        codes, grad = self._base(seed=5, d=3)
        codes_dup = np.hstack([codes, codes])  # features j and j+3 identical
        kw = dict(max_depth=6, min_child_weight=3.0)
        sub, full = self._pair(codes_dup, grad, **kw)
        _assert_same_structure(sub, full)
        used = sub.nodes_.feature[sub.nodes_.feature >= 0]
        assert used.size and np.all(used < 3)  # canonical: first of each tied pair
        ref = BinnedTree(hist_subtraction=False, **kw).fit(codes, grad)
        _assert_same_structure(sub, ref)


class TestGBM:
    def setup_method(self):
        rng = np.random.default_rng(7)
        self.X = rng.normal(0, 1, (1500, 8))
        self.y = (
            np.sin(2 * self.X[:, 0])
            + 0.5 * self.X[:, 1] ** 2
            + self.X[:, 2] * self.X[:, 3]
            + 0.05 * rng.normal(0, 1, 1500)
        )

    def test_beats_mean_baseline(self):
        m = GradientBoostingRegressor(n_estimators=60, max_depth=5, loss="squared")
        m.fit(self.X[:1200], self.y[:1200])
        pred = m.predict(self.X[1200:])
        mae = np.mean(np.abs(pred - self.y[1200:]))
        baseline = np.mean(np.abs(self.y[1200:] - self.y[:1200].mean()))
        assert mae < 0.5 * baseline

    def test_train_curve_decreases(self):
        m = GradientBoostingRegressor(n_estimators=40, max_depth=4, loss="squared")
        m.fit(self.X, self.y)
        curve = np.asarray(m.train_curve_)
        assert curve[-1] < curve[0]
        assert np.all(np.diff(curve) <= 1e-9)

    def test_staged_predict_matches_final(self):
        m = GradientBoostingRegressor(n_estimators=15, max_depth=4, loss="squared")
        m.fit(self.X[:500], self.y[:500])
        staged = m.staged_predict(self.X[500:600])
        np.testing.assert_allclose(staged[-1], m.predict(self.X[500:600]))

    def test_early_stopping_truncates(self):
        m = GradientBoostingRegressor(
            n_estimators=200, max_depth=3, learning_rate=0.5,
            early_stopping_rounds=5, loss="squared",
        )
        m.fit(self.X[:800], self.y[:800], eval_set=(self.X[800:], self.y[800:]))
        assert len(m.trees_) < 200

    def test_feature_importances_find_signal(self):
        m = GradientBoostingRegressor(n_estimators=30, max_depth=4, loss="squared")
        m.fit(self.X, self.y)
        imp = m.feature_importances()
        assert imp.sum() == pytest.approx(1.0)
        # informative features (0-3) must dominate the noise features (4-7)
        assert imp[:4].sum() > imp[4:].sum()

    def test_huber_more_robust_than_squared(self):
        """With gross outliers in y, Huber's test error should not explode."""
        rng = np.random.default_rng(1)
        y = self.y.copy()
        idx = rng.choice(1200, 30, replace=False)
        y[idx] += 50.0
        kw = dict(n_estimators=80, max_depth=5, learning_rate=0.1)
        m_sq = GradientBoostingRegressor(loss="squared", **kw).fit(self.X[:1200], y[:1200])
        m_hu = GradientBoostingRegressor(loss="huber", huber_delta=0.2, **kw).fit(self.X[:1200], y[:1200])
        err_sq = np.median(np.abs(m_sq.predict(self.X[1200:]) - self.y[1200:]))
        err_hu = np.median(np.abs(m_hu.predict(self.X[1200:]) - self.y[1200:]))
        assert err_hu < err_sq

    def test_subsample_colsample_run(self):
        m = GradientBoostingRegressor(
            n_estimators=10, max_depth=3, subsample=0.5, colsample_bytree=0.5, loss="squared"
        )
        m.fit(self.X[:300], self.y[:300])
        assert np.isfinite(m.predict(self.X[:10])).all()

    def test_reproducible_with_seed(self):
        kw = dict(n_estimators=10, max_depth=3, subsample=0.7, random_state=5, loss="squared")
        p1 = GradientBoostingRegressor(**kw).fit(self.X[:300], self.y[:300]).predict(self.X[:20])
        p2 = GradientBoostingRegressor(**kw).fit(self.X[:300], self.y[:300]).predict(self.X[:20])
        np.testing.assert_array_equal(p1, p2)

    def test_invalid_subsample_raises(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=0.0).fit(self.X[:50], self.y[:50])

    def test_invalid_loss_raises(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(loss="absolute")

    def test_row_mismatch_raises(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor().fit(self.X[:10], self.y[:9])

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostingRegressor().predict(self.X[:2])

    def test_get_set_params_roundtrip(self):
        m = GradientBoostingRegressor(max_depth=9)
        params = m.get_params()
        assert params["max_depth"] == 9
        m.set_params(max_depth=4)
        assert m.max_depth == 4
        with pytest.raises(ValueError):
            m.set_params(bogus=1)

    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=1, max_value=4))
    def test_stump_depth_property(self, depth):
        """Predictions of a squared-loss GBM stay within the target range."""
        rng = np.random.default_rng(0)
        X = rng.normal(0, 1, (200, 3))
        y = rng.uniform(-1, 1, 200)
        m = GradientBoostingRegressor(n_estimators=5, max_depth=depth, loss="squared")
        m.fit(X, y)
        pred = m.predict(X)
        assert pred.min() >= y.min() - 0.5 and pred.max() <= y.max() + 0.5
