"""Tests for the observability plane (``repro.serve.obs``).

The plane's standing contracts, pinned here:

* **Observational only** — traced serving is bit-identical to untraced
  serving (the serve stack's oldest invariant extends to the newest
  plane), and span recording can never fail a request.
* **Frozen vocabularies** — the span ``COMPONENTS``/``STAGES`` sets and
  the ``METRICS`` catalogue follow the coded-error discipline: names may
  be added, never renamed; unknown names are refused loudly.
* **Bounded memory, accounted loss** — span rings, the logger tail, and
  latency samples all evict with a ``dropped`` counter, never silently;
  p99+ outliers survive ring churn through the exemplar store.
* **Deterministic under injected clocks** — a counter clock yields exact,
  reproducible span trees and log lines.
* **One snapshot, two exports** — Prometheus text and JSON render the
  same ``collect()`` object, and every exported value equals the
  authoritative ``GatewayStats``/``ClusterStats`` counter exactly.

The end-to-end class forks shard workers and opens sockets (marked
``shard``/``net`` as well); everything else runs on stubs and injected
clocks.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import ModelRegistry, RetryController, ServingGateway
from repro.serve.errors import ErrorCode, coded, to_wire
from repro.serve.net import AsyncServeServer, ServeClient
from repro.serve.obs import (
    COMPONENTS,
    METRIC_NAMES,
    METRICS,
    MetricsRegistry,
    STAGES,
    Span,
    SpanRing,
    StructuredLogger,
    Tracer,
    to_json,
    to_prometheus,
)
from repro.serve.obs.trace import _EXEMPLARS_PER_STAGE
from repro.serve.shard import ShardCrashedError, ShardedServingCluster
from repro.serve.stats import (
    ClusterStats,
    GatewayStats,
    ServerStats,
    _MERGED_SAMPLE_CAP,
    sum_stats,
)

pytestmark = [pytest.mark.serve, pytest.mark.obs]

D = 5


class CounterClock:
    """Deterministic clock: each call returns the next integer float."""

    def __init__(self, t: float = 0.0):
        self.t = float(t)
        self.sleeps: list[float] = []

    def __call__(self) -> float:
        self.t += 1.0
        return self.t

    def sleep(self, dt: float) -> None:
        self.sleeps.append(dt)
        self.t += dt


class LinearModel:
    """Row-wise dot products: bit-identical for any batch blocking."""

    def __init__(self, d: int = D):
        self.w = np.linspace(1.0, 2.0, d)

    def predict(self, X):
        X = np.asarray(X, dtype=float)
        return np.array([float(np.dot(r, self.w)) for r in X])


def _rows(n, seed=0):
    return np.random.default_rng(seed).normal(0, 1, (n, D))


def _span(trace_id="t", component="batcher", stage="score", start=0.0,
          end=1.0, meta=None):
    return Span(trace_id, component, stage, start, end, meta)


def _gateway(tracer=None, trace_sample=1, max_batch=8):
    reg = ModelRegistry()
    reg.register("lin", LinearModel(), promote=True)
    return ServingGateway(
        reg, max_batch=max_batch, max_delay=0.05, cache_entries=1,
        tracer=tracer, trace_sample=trace_sample,
    )


# --------------------------------------------------------------------- #
# span rings: bounded, accounted, exemplar-preserving
# --------------------------------------------------------------------- #
class TestSpanRing:
    def test_bounded_with_drop_accounting(self):
        ring = SpanRing(capacity=4)
        for i in range(10):
            ring.add(_span(start=float(i), end=float(i) + 0.5))
        assert len(ring.snapshot()) == 4
        assert ring.dropped == 6
        assert ring.recorded == 10
        # the survivors are the newest four, oldest first
        assert [s.start for s in ring.snapshot()] == [6.0, 7.0, 8.0, 9.0]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SpanRing(capacity=0)

    def test_exemplars_survive_ring_churn(self):
        ring = SpanRing(capacity=2)
        slow = _span(trace_id="slow", start=0.0, end=100.0)
        ring.add(slow)
        for i in range(50):  # fast spans churn the tiny ring
            ring.add(_span(start=float(i), end=float(i) + 0.001))
        assert slow not in ring.snapshot()       # evicted from the ring...
        assert slow in ring.exemplars()          # ...but retained as outlier

    def test_exemplars_are_the_true_slowest_per_stage(self):
        ring = SpanRing(capacity=4)
        # ascending durations force the floor-replace path on every add
        # past the first _EXEMPLARS_PER_STAGE spans
        for i in range(20):
            ring.add(_span(start=0.0, end=float(i + 1)))
        durations = sorted(s.duration for s in ring.exemplars())
        expect = [float(i + 1) for i in range(20 - _EXEMPLARS_PER_STAGE, 20)]
        assert durations == expect

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
            min_size=1, max_size=64,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_ring_accounting_and_exemplar_properties(self, durations):
        """For any duration sequence: ``recorded`` counts every add,
        ``dropped`` counts exactly the overflow, and the exemplar store
        holds a multiset containing the true top-k durations."""
        cap = 4
        ring = SpanRing(capacity=cap)
        for i, dur in enumerate(durations):
            ring.add(_span(start=0.0, end=dur))
        assert ring.recorded == len(durations)
        assert ring.dropped == max(0, len(durations) - cap)
        kept = sorted(s.duration for s in ring.exemplars())
        want = sorted(durations)[-_EXEMPLARS_PER_STAGE:]
        assert kept == want


# --------------------------------------------------------------------- #
# tracer: determinism, frozen vocabulary, queries
# --------------------------------------------------------------------- #
class TestTracer:
    def test_deterministic_under_injected_clock(self):
        def run():
            tr = Tracer(clock=CounterClock())
            ctx = tr.start_trace()
            t0 = ctx.now()
            ctx.record("gateway", "route", t0, ctx.now(), meta={"name": "lin"})
            ctx.record("batcher", "score", ctx.now(), ctx.now())
            return [
                (s.component, s.stage, s.start, s.end, s.meta)
                for s in tr.spans(ctx.trace_id)
            ]

        first = run()
        assert first == run()
        assert first == [
            ("batcher", "score", 3.0, 4.0, None),
            ("gateway", "route", 1.0, 2.0, {"name": "lin"}),
        ]

    def test_frozen_vocabulary_refuses_unknown_names(self):
        tr = Tracer(clock=CounterClock())
        ctx = tr.start_trace()
        with pytest.raises(ValueError, match="unknown span component"):
            ctx.record("frobnicator", "route", 0.0, 1.0)
        with pytest.raises(ValueError, match="unknown span stage"):
            ctx.record("gateway", "warp", 0.0, 1.0)
        assert tr.spans() == []  # a refused span records nothing

    def test_vocabulary_is_the_documented_set(self):
        # frozen like the ErrorCode numbers: additions append, renames fail
        assert COMPONENTS == {
            "edge", "gateway", "batcher", "cluster", "worker", "resilience",
        }
        assert STAGES == {
            "parse", "admission", "queue_wait", "flush", "route", "steal",
            "transport", "score", "respond", "retry",
        }

    def test_trace_ids_unique_and_adopted_verbatim(self):
        tr = Tracer()
        a, b = tr.start_trace(), tr.start_trace()
        assert a.trace_id != b.trace_id
        assert tr.context("wire-id-7").trace_id == "wire-id-7"

    def test_spans_filter_and_export_shape(self):
        tr = Tracer(clock=CounterClock())
        ca, cb = tr.start_trace(), tr.start_trace()
        ca.record("gateway", "route", 0.0, 1.0)
        cb.record("batcher", "flush", 1.0, 3.0)
        assert [s.trace_id for s in tr.spans(ca.trace_id)] == [ca.trace_id]
        dump = tr.export(cb.trace_id)
        assert set(dump) == {"spans", "dropped", "recorded"}
        (span,) = dump["spans"]
        assert set(span) >= {"trace", "component", "stage", "start", "end", "pid"}
        assert dump["recorded"] == {"batcher": 1, "gateway": 1}
        assert dump["dropped"] == {"batcher": 0, "gateway": 0}

    def test_slowest_is_sorted_and_deduplicated(self):
        tr = Tracer(ring_size=4, clock=CounterClock())
        ctx = tr.start_trace()
        for i in range(12):  # exemplars overlap the live ring
            ctx.record("batcher", "score", 0.0, float(i + 1))
        top = tr.slowest(5)
        assert [s.duration for s in top] == [12.0, 11.0, 10.0, 9.0, 8.0]
        assert len({id(s) for s in top}) == len(top)


# --------------------------------------------------------------------- #
# the frozen metric catalogue + the two exporters
# --------------------------------------------------------------------- #
class TestMetricsCatalogue:
    def test_catalogue_names_are_frozen(self):
        """Append-only: renaming or dropping any of these fails the PR."""
        assert METRIC_NAMES >= {
            "repro_serve_requests_total",
            "repro_serve_rows_total",
            "repro_serve_batches_total",
            "repro_serve_completed_total",
            "repro_serve_flushes_total",
            "repro_serve_abandoned_total",
            "repro_serve_cache_hits_total",
            "repro_serve_cache_misses_total",
            "repro_serve_cache_evictions_total",
            "repro_serve_cache_invalidations_total",
            "repro_serve_cache_entries",
            "repro_serve_latency_seconds",
            "repro_serve_latency_samples_dropped_total",
            "repro_serve_models",
            "repro_gateway_tap_errors_total",
            "repro_cluster_steals_total",
            "repro_cluster_shards_live",
            "repro_edge_connections_total",
            "repro_edge_requests_total",
            "repro_edge_submitted_total",
            "repro_edge_responses_total",
            "repro_edge_shed_total",
            "repro_edge_wire_errors_total",
            "repro_edge_in_flight",
            "repro_resilience_submits_total",
            "repro_resilience_retries_total",
            "repro_resilience_recovered_total",
            "repro_resilience_failed_fast_total",
            "repro_resilience_exhausted_total",
            "repro_resilience_breaker_opens_total",
            "repro_resilience_breaker_probes_total",
            "repro_resilience_exhausted_total",
            "repro_monitor_events_total",
            "repro_obs_spans_total",
            "repro_obs_spans_dropped_total",
        }
        kinds = {spec.kind for spec in METRICS}
        assert kinds == {"counter", "gauge", "summary"}
        assert all(spec.name.startswith("repro_") for spec in METRICS)
        assert all(spec.help for spec in METRICS)

    def test_collect_emits_only_catalogue_names(self):
        with _gateway(tracer=Tracer()) as gw:
            for row in _rows(6, seed=1):
                gw.submit("lin", row)
            gw.flush()
            reg = MetricsRegistry().add_backend(gw).add_tracer(gw._tracer)
            snap = reg.collect()
        assert set(snap["families"]) <= METRIC_NAMES

    def test_both_exports_render_the_same_snapshot(self):
        with _gateway(tracer=Tracer()) as gw:
            for row in _rows(4, seed=2):
                gw.submit("lin", row)
            gw.flush()
            reg = MetricsRegistry().add_backend(gw).add_tracer(gw._tracer)
            snap = reg.collect()
        assert json.loads(to_json(snap)) == snap
        prom = to_prometheus(snap)
        for name in snap["families"]:
            assert f"# HELP {name} " in prom
            assert f"# TYPE {name} " in prom
            assert f"\n{name}" in prom or prom.startswith(name)

    def test_exports_agree_with_gateway_stats_exactly(self):
        with _gateway(tracer=Tracer()) as gw:
            rows = _rows(12, seed=3)
            for row in rows:
                gw.submit("lin", row).result(timeout=20.0)
            reg = MetricsRegistry().add_backend(gw).add_tracer(gw._tracer)
            snap = reg.collect()
            st_ = gw.stats()
        fam = snap["families"]

        def value(name, labels=None):
            for suffix, lab, val in fam[name]["samples"]:
                if suffix == "" and lab == (labels or {}):
                    return val
            raise AssertionError(f"no bare sample for {name} {labels}")

        assert value("repro_serve_requests_total") == st_.total.requests == len(rows)
        assert value("repro_serve_completed_total") == st_.total.completed
        assert value("repro_serve_abandoned_total") == st_.total.abandoned == 0
        assert value("repro_gateway_tap_errors_total") == st_.tap_errors == 0
        assert (
            value("repro_serve_latency_samples_dropped_total")
            == st_.total.latency_dropped
        )
        assert value("repro_obs_spans_total", {"component": "gateway"}) == len(rows)

    def test_resilience_and_event_sources(self):
        clock = CounterClock()

        class OneEvent:
            code = ErrorCode.SHARD_CRASHED

        cluster = ScriptedTraceCluster([ShardCrashedError("x"), 5.0])
        rc = RetryController(
            cluster, clock=clock, sleep=clock.sleep, deadline_s=100.0
        )
        assert rc.predict("m", np.zeros(3)) == 5.0
        reg = (
            MetricsRegistry()
            .add_resilience(rc)
            .add_events(lambda: [OneEvent(), OneEvent()])
        )
        fam = reg.collect()["families"]
        assert fam["repro_resilience_retries_total"]["samples"][0][2] == 1
        assert fam["repro_resilience_recovered_total"]["samples"][0][2] == 1
        (sample,) = fam["repro_monitor_events_total"]["samples"]
        assert sample[1] == {"code": "SHARD_CRASHED"} and sample[2] == 2


# --------------------------------------------------------------------- #
# gateway tracing: birth, sampling, bit-identity
# --------------------------------------------------------------------- #
class TestGatewayTracing:
    def test_auto_born_trace_records_the_in_process_stages(self):
        tracer = Tracer()
        with _gateway(tracer=tracer) as gw:
            row = _rows(1, seed=4)[0]
            gw.submit("lin", row).result(timeout=20.0)
        stages = {(s.component, s.stage) for s in tracer.spans()}
        assert stages >= {
            ("gateway", "route"),
            ("batcher", "queue_wait"),
            ("batcher", "flush"),
            ("batcher", "score"),
        }
        # every span of the request shares the one auto-born trace id
        assert len({s.trace_id for s in tracer.spans()}) == 1

    def test_traced_serving_is_bit_identical_to_untraced(self):
        rows = _rows(64, seed=5)
        with _gateway() as plain:
            ref = np.array([plain.submit("lin", r).result(timeout=20.0)
                            for r in rows])
        with _gateway(tracer=Tracer()) as traced:
            got = np.array([traced.submit("lin", r).result(timeout=20.0)
                            for r in rows])
        assert np.array_equal(got, ref)

    def test_trace_sample_strides_auto_births(self):
        tracer = Tracer()
        with _gateway(tracer=tracer, trace_sample=4) as gw:
            for row in _rows(16, seed=6):
                gw.submit("lin", row).result(timeout=20.0)
        # submissions 0, 4, 8, 12 are traced; the rest record nothing
        assert len({s.trace_id for s in tracer.spans()}) == 4

    def test_explicit_context_is_always_traced_never_sampled(self):
        tracer = Tracer()
        with _gateway(tracer=tracer, trace_sample=1_000_000) as gw:
            rows = _rows(3, seed=7)
            gw.submit("lin", rows[0]).result(timeout=20.0)  # sampled slot 0
            ctx = tracer.start_trace("explicit-1")
            gw.submit("lin", rows[1], trace=ctx).result(timeout=20.0)
            gw.submit("lin", rows[2]).result(timeout=20.0)  # not sampled
        assert any(s.trace_id == "explicit-1" for s in tracer.spans())

    def test_trace_sample_validated(self):
        with pytest.raises(ValueError):
            _gateway(tracer=Tracer(), trace_sample=0)


# --------------------------------------------------------------------- #
# stats satellites: summary symmetry, accounted latency loss
# --------------------------------------------------------------------- #
def _stats(**kw) -> ServerStats:
    base = dict(
        requests=0, rows=0, batches=0, completed=0, size_flushes=0,
        deadline_flushes=0, manual_flushes=0, abandoned=0, cache_hits=0,
        cache_misses=0, cache_evictions=0, cache_invalidations=0,
        cache_entries=0, total_latency_s=0.0,
    )
    base.update(kw)
    return ServerStats(**base)


class TestStatsSatellites:
    def test_server_summary_reports_abandoned(self):
        assert "abandoned=3" in _stats(abandoned=3).summary()

    def test_gateway_summary_reports_tap_errors(self):
        gs = GatewayStats(per_name={"lin": _stats(requests=2)}, tap_errors=4)
        assert "tap_errors=4" in gs.summary()

    def test_cluster_summary_reports_every_rollup_level(self):
        cs = ClusterStats(
            per_shard={
                0: GatewayStats(per_name={"a": _stats()}, tap_errors=2),
                1: GatewayStats(per_name={"b": _stats()}, tap_errors=0),
            },
            tap_errors=1,
            steals=5,
        )
        text = cs.summary()
        assert "steals=5" in text
        assert "tap_errors=3" in text         # parent 1 + shards 2 + 0
        assert "shard 0" in text and "tap_errors=2" in text
        assert cs.tap_errors_total == 3

    def test_sum_stats_decimation_is_accounted_as_dropped(self):
        per_source = _MERGED_SAMPLE_CAP // 2 + 1
        snaps = [
            _stats(latency_samples=tuple(float(i) for i in range(per_source)))
            for _ in range(3)
        ]
        merged = sum_stats(snaps)
        total_in = 3 * per_source
        assert len(merged.latency_samples) <= _MERGED_SAMPLE_CAP
        # every decimated-away sample lands in the dropped counter
        assert merged.latency_dropped == total_in - len(merged.latency_samples)
        assert merged.latency_dropped > 0

    def test_sum_stats_under_cap_drops_nothing(self):
        snaps = [_stats(latency_samples=(0.1, 0.2)) for _ in range(2)]
        merged = sum_stats(snaps)
        assert merged.latency_samples == (0.1, 0.2, 0.1, 0.2)
        assert merged.latency_dropped == 0


# --------------------------------------------------------------------- #
# resilience: one trace across every attempt, a span per retry
# --------------------------------------------------------------------- #
class FakeTicket:
    def __init__(self, value=None, error=None):
        self.shard_id = 0
        self._value, self._error = value, error

    def done(self):
        return True

    def result(self, timeout=None):
        if self._error is not None:
            raise self._error
        return self._value


class ScriptedTraceCluster:
    """Scripted outcomes; accepts (and remembers) the trace kwarg."""

    route = "replicated"

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.submits = 0
        self.traces: list = []

    def live_shards(self):
        return [0]

    def shard_of(self, name):
        return 0

    def submit(self, name, row, kind="predict", trace=None):
        self.traces.append(trace)
        out = self.outcomes[min(self.submits, len(self.outcomes) - 1)]
        self.submits += 1
        if isinstance(out, BaseException):
            return FakeTicket(error=out)
        return FakeTicket(value=out)

    def submit_block(self, name, X, kind="predict"):
        return self.submit(name, X, kind)


class TestResilienceTracing:
    def _controller(self, cluster, clock, tracer):
        return RetryController(
            cluster, deadline_s=100.0, base_delay_s=0.01, max_delay_s=0.25,
            jitter=0.0, seed=7, breaker_threshold=100,
            clock=clock, sleep=clock.sleep, tracer=tracer,
        )

    def test_retry_spans_share_one_trace_across_attempts(self):
        clock = CounterClock()
        tracer = Tracer(clock=clock)
        cluster = ScriptedTraceCluster([ShardCrashedError("x")] * 2 + [42.0])
        rc = self._controller(cluster, clock, tracer)
        assert rc.predict("m", np.zeros(3)) == 42.0
        spans = tracer.spans()
        assert [(s.component, s.stage) for s in spans] == [
            ("resilience", "retry")
        ] * 2
        assert [s.meta["attempt"] for s in spans] == [1, 2]
        assert all(s.meta["code"] == int(ErrorCode.SHARD_CRASHED) for s in spans)
        # one logical request, one trace id, monotone per-process times
        assert len({s.trace_id for s in spans}) == 1
        assert all(s.end > s.start for s in spans)
        # every resubmission carried the same context down to the cluster
        ids = {t.trace_id for t in cluster.traces if t is not None}
        assert ids == {spans[0].trace_id}

    def test_untraced_controller_passes_bare_submits(self):
        clock = CounterClock()
        cluster = ScriptedTraceCluster([1.0])
        rc = RetryController(cluster, clock=clock, sleep=clock.sleep)
        assert rc.predict("m", np.zeros(3)) == 1.0
        assert cluster.traces == [None]  # duck-typed backends stay untouched

    @given(n_failures=st.integers(min_value=0, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_retry_span_trees_well_formed_for_any_failure_run(self, n_failures):
        """For any length of transient-failure run: exactly one retry span
        per re-attempt, attempts numbered 1..n, timestamps monotone in
        record order, all spans under a single trace id, and the span
        count agreeing with the controller's own ``retries`` counter."""
        clock = CounterClock()
        tracer = Tracer(clock=clock)
        cluster = ScriptedTraceCluster(
            [ShardCrashedError("x")] * n_failures + [7.0]
        )
        rc = self._controller(cluster, clock, tracer)
        assert rc.predict("m", np.zeros(3)) == 7.0
        spans = tracer.spans()
        assert len(spans) == n_failures == rc.stats().retries
        assert [s.meta["attempt"] for s in spans] == list(
            range(1, n_failures + 1)
        )
        assert len({s.trace_id for s in spans}) <= 1
        times = [t for s in spans for t in (s.start, s.end)]
        assert times == sorted(times)
        assert all(s.component in COMPONENTS and s.stage in STAGES
                   for s in spans)


# --------------------------------------------------------------------- #
# structured logging
# --------------------------------------------------------------------- #
class TestStructuredLogger:
    def test_deterministic_json_lines_under_injected_clock(self):
        stream = io.StringIO()
        log = StructuredLogger(stream=stream, clock=CounterClock())
        log.info("flush", rows=8)
        log.warn("slow", name="lin")
        lines = [json.loads(l) for l in stream.getvalue().splitlines()]
        assert lines == [
            {"event": "flush", "level": "info", "rows": 8, "ts": 1.0},
            {"event": "slow", "level": "warn", "name": "lin", "ts": 2.0},
        ]

    def test_trace_correlation_accepts_id_or_context(self):
        log = StructuredLogger(clock=CounterClock())
        ctx = Tracer().start_trace("corr-1")
        assert log.log("info", "a", trace=ctx)["trace"] == "corr-1"
        assert log.log("info", "b", trace="corr-2")["trace"] == "corr-2"
        assert "trace" in log.tail()[0]

    def test_coded_error_embeds_the_wire_image(self):
        log = StructuredLogger(clock=CounterClock())
        exc = coded(ConnectionError("shard 1 died"), ErrorCode.SHARD_CRASHED)
        rec = log.error("submit failed", exc=exc)
        assert rec["error"] == to_wire(exc)
        assert rec["error"]["code"] == int(ErrorCode.SHARD_CRASHED)
        assert rec["error"]["retryable"] is True

    def test_tail_ring_bounded_with_drop_accounting(self):
        log = StructuredLogger(clock=CounterClock(), ring=2)
        for i in range(5):
            log.info("e", i=i)
        assert [r["i"] for r in log.tail()] == [3, 4]
        assert log.dropped == 3

    def test_level_filter_counts_suppressed(self):
        stream = io.StringIO()
        log = StructuredLogger(stream=stream, clock=CounterClock(), level="warn")
        assert log.debug("noise") is None
        assert log.info("noise") is None
        assert log.error("boom")["level"] == "error"
        assert log.suppressed == 2
        assert stream.getvalue().count("\n") == 1

    def test_unknown_levels_refused(self):
        with pytest.raises(ValueError):
            StructuredLogger(level="whisper")
        with pytest.raises(ValueError):
            StructuredLogger().log("shout", "e")


# --------------------------------------------------------------------- #
# the wire error payload: trace key only when traced
# --------------------------------------------------------------------- #
class TestWireTraceKey:
    def test_untraced_payload_shape_stays_frozen(self):
        wire = to_wire(coded(ValueError("bad"), ErrorCode.MALFORMED_REQUEST))
        assert "trace" not in wire
        assert set(wire) == {
            "code", "name", "category", "severity", "retryable", "type",
            "detail",
        }

    def test_traced_error_ships_its_join_key(self):
        exc = coded(ConnectionError("died"), ErrorCode.SHARD_CRASHED)
        exc.trace_id = "join-key-9"
        assert to_wire(exc)["trace"] == "join-key-9"


# --------------------------------------------------------------------- #
# end-to-end: socket cluster behind the TCP edge, one shared tracer
# --------------------------------------------------------------------- #
@pytest.mark.shard
@pytest.mark.net
class TestEndToEnd:
    @pytest.fixture()
    def traced_stack(self):
        reg = ModelRegistry()
        reg.register("lin", LinearModel(), promote=True)
        tracer = Tracer()
        with ShardedServingCluster(
            reg, n_shards=2, transport="socket", max_batch=8, max_delay=0.05,
            tracer=tracer,
        ) as cluster:
            with AsyncServeServer(cluster, tracer=tracer) as srv:
                yield cluster, srv, tracer

    def test_one_request_yields_a_complete_cross_process_trace(
        self, traced_stack
    ):
        cluster, srv, tracer = traced_stack
        model = LinearModel()
        rows = _rows(9, seed=8)
        with ServeClient(srv.host, srv.port) as client:
            for row in rows[:-1]:  # warm both shards' services
                client.send("lin", row)
            client.drain()
            client.send("lin", rows[-1], trace_id="e2e-trace-1")
            got = client.recv()
            assert got == float(model.predict(rows[-1][None, :])[0])
            dump = client.trace("e2e-trace-1")
            prom = client.metrics("prom")
            snap = client.metrics("json")
            slowest = client.slowest(5)
        spans = dump["spans"]
        assert all(s["trace"] == "e2e-trace-1" for s in spans)
        stages = {(s["component"], s["stage"]) for s in spans}
        assert len(stages) >= 6, f"incomplete trace: {sorted(stages)}"
        assert stages >= {
            ("edge", "parse"), ("edge", "admission"), ("edge", "respond"),
            ("cluster", "transport"), ("batcher", "score"),
        }
        # spans from at least two processes reassembled under one id
        assert len({s["pid"] for s in spans}) >= 2
        # the wire exports agree with the authoritative counters exactly
        st_ = cluster.stats()
        fam = snap["families"]

        def value(name):
            (sample,) = [s for s in fam[name]["samples"] if s[0] == ""]
            return sample[2]

        assert value("repro_serve_requests_total") == st_.total.requests
        assert value("repro_cluster_steals_total") == st_.steals
        assert value("repro_gateway_tap_errors_total") == st_.tap_errors_total
        assert value("repro_cluster_shards_live") == 2
        assert "repro_serve_requests_total" in prom
        assert "repro_obs_spans_total" in prom
        # slowest-span forensics come back duration-sorted
        durs = [s["end"] - s["start"] for s in slowest]
        assert durs == sorted(durs, reverse=True) and len(slowest) <= 5

    def test_traced_wire_serving_is_bit_identical(self, traced_stack):
        cluster, srv, tracer = traced_stack
        model = LinearModel()
        rows = _rows(40, seed=9)
        with ServeClient(srv.host, srv.port) as client:
            for i, row in enumerate(rows):
                client.send("lin", row, trace_id=f"soak-{i}")
            got = np.array(client.drain())
        assert np.array_equal(got, model.predict(rows))
        # every explicit trace id is retrievable afterwards
        assert any(s.trace_id == "soak-0" for s in tracer.spans())

    def test_trace_survives_kill_and_respawn(self, traced_stack):
        """Spans recorded after a shard dies and is respawned are still
        well-formed and still reassemble by id — a worker's rings die
        with it, never corrupting the parent's."""
        cluster, srv, tracer = traced_stack
        model = LinearModel()
        rows = _rows(6, seed=10)
        with ServeClient(srv.host, srv.port) as client:
            for row in rows[:3]:
                client.send("lin", row)
            client.drain()
            victim = cluster.live_shards()[0]
            cluster.kill_shard(victim)
            cluster.respawn([victim])
            client.send("lin", rows[3], trace_id="post-respawn")
            assert client.recv() == float(model.predict(rows[3][None, :])[0])
            dump = client.trace("post-respawn")
        spans = dump["spans"]
        assert spans, "respawned stack recorded no spans"
        assert all(s["component"] in COMPONENTS and s["stage"] in STAGES
                   for s in spans)
        assert all(s["end"] >= s["start"] for s in spans)
