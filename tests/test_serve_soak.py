"""Threaded soak of the gateway under stage churn.

Many submitter threads hammer two names through one
:class:`ServingGateway` while a mutator thread promotes and rolls back one
of them mid-stream.  The serve stack's concurrency contract says that
however the interleaving lands:

* **no ticket is lost or duplicated** — every submission completes exactly
  once, and no two tickets of a name share a ``(batch_seq, batch_pos)``
  flush slot,
* **FIFO holds per submitter** — a thread's successive submissions to one
  name score in submission order (the batcher's flush-slot witness is
  lexicographically increasing),
* **bit-identity survives churn** — every result equals a direct predict
  by one of the versions that was production at some point during the
  ticket's lifetime (exactly one candidate for the unchurned name).

Bounded to a few seconds: small models, thread counts in the single
digits, no sleeps on the submit path.
"""

import threading

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.gbm import GradientBoostingRegressor
from repro.serve import ModelRegistry, ServingGateway

pytestmark = [pytest.mark.serve, pytest.mark.gateway]

N_THREADS = 6
N_PER_THREAD = 100
D = 5


def _data(n, seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n, D))
    y = np.sin(X[:, 0]) + X[:, 1] * X[:, 2]
    return X, y


@pytest.fixture(scope="module")
def served():
    X, y = _data(500, 0)
    stable = GradientBoostingRegressor(n_estimators=12, max_depth=3, loss="squared").fit(X, y)
    churn_v1 = RandomForestRegressor(n_estimators=12, max_depth=6, random_state=1).fit(X, y)
    churn_v2 = RandomForestRegressor(n_estimators=12, max_depth=6, random_state=2).fit(X, y)
    reg = ModelRegistry()
    reg.register("stable", stable, promote=True)
    v1 = reg.register("churn", churn_v1, promote=True)
    v2 = reg.register("churn", churn_v2)
    return reg, {"stable": (stable,), "churn": (churn_v1, churn_v2)}, (v1, v2)


def test_threaded_soak_fifo_no_loss_bit_identity(served):
    reg, models, (v1, v2) = served
    # unique rows per (thread, submission): a duplicate would legally hit
    # the cache and skip the batcher, which has no flush slot to witness
    all_rows = _data(N_THREADS * N_PER_THREAD, seed=9)[0]

    with ServingGateway(reg, max_batch=24, max_delay=0.002) as gw:
        records = [[] for _ in range(N_THREADS)]  # (name, row_idx, ticket)
        errors: list[Exception] = []
        start = threading.Barrier(N_THREADS + 1)

        def submitter(tid: int) -> None:
            try:
                start.wait(timeout=10.0)
                for j in range(N_PER_THREAD):
                    idx = tid * N_PER_THREAD + j
                    name = "churn" if (tid + j) % 2 else "stable"
                    records[tid].append((name, idx, gw.submit(name, all_rows[idx])))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=submitter, args=(t,)) for t in range(N_THREADS)]
        for t in threads:
            t.start()

        churn = threading.Event()

        def mutator() -> None:
            # promote/rollback churn while submissions are in full flight
            start.wait(timeout=10.0)
            for _ in range(8):
                reg.promote("churn", v2)
                reg.rollback("churn")
            churn.set()

        mut = threading.Thread(target=mutator)
        mut.start()
        for t in threads:
            t.join(timeout=30.0)
        mut.join(timeout=30.0)
        assert not errors, errors
        assert churn.is_set()
        gw.flush()

        # --- no lost tickets: every submission completes exactly once -- #
        results: dict[int, float] = {}
        slots: dict[str, set] = {"stable": set(), "churn": set()}
        order: dict[tuple[int, str], list] = {}
        for tid, recs in enumerate(records):
            assert len(recs) == N_PER_THREAD
            for name, idx, ticket in recs:
                results[idx] = ticket.result(timeout=20.0)
                slot = (ticket.batch_seq, ticket.batch_pos)
                assert slot not in slots[name], "duplicated flush slot"
                slots[name].add(slot)
                assert ticket.batch_seq >= 0 and ticket.batch_pos >= 0
                order.setdefault((tid, name), []).append(slot)
        assert len(results) == N_THREADS * N_PER_THREAD

        # --- FIFO per submitter thread per name ----------------------- #
        for key, seq in order.items():
            assert seq == sorted(seq), f"flush slots out of order for {key}"

        # --- bit-identity under churn --------------------------------- #
        stable_model = models["stable"][0]
        c1, c2 = models["churn"]
        for tid, recs in enumerate(records):
            for name, idx, _ in recs:
                got = results[idx]
                row = all_rows[idx][None, :]
                if name == "stable":
                    assert got == stable_model.predict(row)[0]
                else:
                    candidates = (c1.predict(row)[0], c2.predict(row)[0])
                    assert got in candidates

        # --- counters agree with the ledger --------------------------- #
        stats = gw.stats()
        assert stats.total.requests == N_THREADS * N_PER_THREAD
        assert stats.per_name["stable"].requests == sum(
            1 for recs in records for name, _, _ in recs if name == "stable"
        )

    # quiesced: production is back on v1, answers match it exactly
    assert reg.production_version("churn") == v1
