"""Tests for the GBM's pinball (quantile) loss and prediction intervals."""

import numpy as np
import pytest

from repro.ml.gbm import GradientBoostingRegressor


def _heteroscedastic(n=3000, seed=0):
    """y = x + noise whose spread grows with x."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 4.0, n)
    y = x + rng.normal(0.0, 0.1 + 0.2 * x, n)
    return x[:, None], y


class TestQuantileLoss:
    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(loss="quantile", quantile_alpha=0.0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(loss="quantile", quantile_alpha=1.0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(loss="exotic")

    def test_base_score_is_target_quantile(self):
        y = np.arange(100.0)
        X = np.zeros((100, 1))
        model = GradientBoostingRegressor(
            n_estimators=1, loss="quantile", quantile_alpha=0.9
        ).fit(X, y)
        assert model.base_score_ == pytest.approx(np.quantile(y, 0.9))

    @pytest.mark.parametrize("alpha", [0.1, 0.5, 0.9])
    def test_empirical_coverage_matches_alpha(self, alpha):
        X, y = _heteroscedastic()
        model = GradientBoostingRegressor(
            n_estimators=300, max_depth=3, learning_rate=0.1,
            loss="quantile", quantile_alpha=alpha,
        ).fit(X, y)
        below = float(np.mean(y <= model.predict(X)))
        assert below == pytest.approx(alpha, abs=0.07)

    def test_quantiles_are_ordered(self):
        X, y = _heteroscedastic()
        preds = {}
        for alpha in (0.1, 0.5, 0.9):
            m = GradientBoostingRegressor(
                n_estimators=200, max_depth=3, loss="quantile", quantile_alpha=alpha
            ).fit(X, y)
            preds[alpha] = m.predict(X)
        # pointwise monotone in alpha for the overwhelming majority of rows
        assert np.mean(preds[0.1] <= preds[0.5] + 1e-9) > 0.95
        assert np.mean(preds[0.5] <= preds[0.9] + 1e-9) > 0.95

    def test_interval_width_tracks_heteroscedastic_noise(self):
        # the pinball gradient has constant magnitude, so convergence to the
        # local quantile needs larger steps than the center losses
        X, y = _heteroscedastic()
        params = dict(n_estimators=400, max_depth=3, learning_rate=0.3,
                      huber_delta=0.3, loss="quantile")
        lo = GradientBoostingRegressor(quantile_alpha=0.1, **params).fit(X, y).predict(X)
        hi = GradientBoostingRegressor(quantile_alpha=0.9, **params).fit(X, y).predict(X)
        width = hi - lo
        small_x = X[:, 0] < 1.0
        large_x = X[:, 0] > 3.0
        assert np.median(width[large_x]) > 1.5 * np.median(width[small_x])

    def test_median_quantile_close_to_huber_fit(self):
        X, y = _heteroscedastic()
        q50 = GradientBoostingRegressor(
            n_estimators=200, max_depth=3, loss="quantile", quantile_alpha=0.5
        ).fit(X, y).predict(X)
        hub = GradientBoostingRegressor(
            n_estimators=200, max_depth=3, loss="huber"
        ).fit(X, y).predict(X)
        assert np.mean(np.abs(q50 - hub)) < 0.25


class TestStagedEvalScoring:
    """Thread-parallel eval-set scoring must be invisible in the numbers."""

    def _fit(self):
        rng = np.random.default_rng(3)
        X = rng.normal(0, 1, (1200, 6))
        y = np.sin(2 * X[:, 0]) + X[:, 1] * X[:, 2] + 0.05 * rng.normal(0, 1, 1200)
        model = GradientBoostingRegressor(n_estimators=30, max_depth=4, loss="squared")
        model.fit(X[:800], y[:800], eval_set=(X[800:], y[800:]))
        return model, X, y

    def test_n_jobs_invariant(self):
        """Fixed row blocks recombined in block order: identical curves for
        any worker count (the forest-training invariance contract)."""
        model, X, y = self._fit()
        sets = [(X[800:], y[800:]), (X[:300], y[:300])]
        s1 = model.staged_scores(sets, n_jobs=1, block=256)
        s4 = model.staged_scores(sets, n_jobs=4, block=256)
        for a, b in zip(s1, s4):
            assert a.shape == (len(model.trees_),)
            np.testing.assert_array_equal(a, b)

    def test_matches_fit_eval_curve(self):
        """Recomputed staged MAE agrees with the curve fit recorded online
        (allclose: block sums vs one full-array mean)."""
        model, X, y = self._fit()
        curve = model.staged_scores([(X[800:], y[800:])], n_jobs=2, block=128)[0]
        np.testing.assert_allclose(curve, np.asarray(model.eval_curve_), rtol=1e-12)

    def test_row_mismatch_raises(self):
        model, X, y = self._fit()
        with pytest.raises(ValueError):
            model.staged_scores([(X[:10], y[:9])])

    def test_empty_eval_set_raises(self):
        """An empty eval set has no MAE curve — reject it instead of
        silently returning all zeros."""
        model, X, y = self._fit()
        with pytest.raises(ValueError):
            model.staged_scores([(X[:0], y[:0])])

    def test_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostingRegressor().staged_scores([(np.zeros((2, 2)), np.zeros(2))])
