"""Reference cross-checks: our clustering vs scipy and brute force.

The clustering substrate is hand-rolled (no sklearn available), so these
tests anchor it against independent implementations: scipy's linkage for
the agglomerative hierarchy, and an O(n²) literal-definition DBSCAN.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.cluster import hierarchy

from repro.cluster import DBSCAN, AgglomerativeClustering


def _blobs(n_per=25, seed=0):
    rng = np.random.default_rng(seed)
    return np.concatenate([
        rng.normal((0, 0), 0.5, (n_per, 2)),
        rng.normal((6, 6), 0.5, (n_per, 2)),
        rng.normal((-6, 6), 0.5, (n_per, 2)),
    ])


class TestAgglomerativeVsScipy:
    def test_merge_heights_match_scipy_average_linkage(self):
        X = _blobs()
        ours = AgglomerativeClustering(n_clusters=1).fit(X)
        Z = hierarchy.linkage(X, method="average")
        # same multiset of merge heights (merge order may differ on ties)
        np.testing.assert_allclose(
            np.sort(ours.merge_heights_), np.sort(Z[:, 2]), rtol=1e-8
        )

    def test_flat_clusters_match_scipy_cut(self):
        X = _blobs(seed=3)
        ours = AgglomerativeClustering(n_clusters=3).fit(X)
        Z = hierarchy.linkage(X, method="average")
        ref = hierarchy.fcluster(Z, t=3, criterion="maxclust")
        # same partition up to label permutation
        for labels in (ours.labels_, ref):
            assert np.unique(labels).size == 3
        agreement = 0
        for c in np.unique(ours.labels_):
            members = ref[ours.labels_ == c]
            agreement += np.bincount(members).max()
        assert agreement == X.shape[0]


def _brute_dbscan(X, eps, min_samples):
    """Literal-definition DBSCAN for cross-checking."""
    n = X.shape[0]
    d2 = ((X[:, None, :] - X[None, :, :]) ** 2).sum(-1)
    neighbors = [np.flatnonzero(d2[i] <= eps**2 + 1e-12) for i in range(n)]
    core = np.array([nb.size >= min_samples for nb in neighbors])
    labels = np.full(n, -1)
    cid = 0
    for i in range(n):
        if not core[i] or labels[i] != -1:
            continue
        stack, labels[i] = [i], cid
        while stack:
            p = stack.pop()
            if not core[p]:
                continue
            for q in neighbors[p]:
                if labels[q] == -1:
                    labels[q] = cid
                    stack.append(int(q))
        cid += 1
    return labels


class TestDBSCANVsBruteForce:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.floats(0.3, 2.0), st.integers(2, 6))
    def test_matches_reference_partition(self, seed, eps, min_samples):
        rng = np.random.default_rng(seed)
        X = rng.normal(0.0, 1.0, (60, 2))
        ours = DBSCAN(eps=eps, min_samples=min_samples).fit(X).labels_
        ref = _brute_dbscan(X, eps, min_samples)
        # identical noise sets
        np.testing.assert_array_equal(ours == -1, ref == -1)
        # identical partitions up to relabeling
        for c in np.unique(ours):
            if c < 0:
                continue
            refs = ref[ours == c]
            assert np.unique(refs).size == 1

    def test_core_masks_match(self):
        X = _blobs(seed=5)
        model = DBSCAN(eps=1.0, min_samples=4).fit(X)
        d2 = ((X[:, None, :] - X[None, :, :]) ** 2).sum(-1)
        ref_core = (d2 <= 1.0 + 1e-12).sum(1) >= 4
        np.testing.assert_array_equal(model.core_mask_, ref_core)
