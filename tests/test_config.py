"""Tests for configuration presets."""

import pytest

from repro.config import (
    PRESETS,
    SimulationConfig,
    cori_config,
    preset,
    theta_config,
)


class TestPresets:
    def test_theta_platform_flags(self):
        cfg = theta_config()
        assert cfg.platform.has_cobalt and not cfg.platform.has_lmt

    def test_cori_platform_flags(self):
        cfg = cori_config()
        assert cfg.platform.has_lmt and not cfg.platform.has_cobalt

    def test_cori_noisier_than_theta(self):
        """Paper: Cori σ₀ ±7.21 % vs Theta ±5.71 %."""
        assert cori_config().platform.noise_sigma > theta_config().platform.noise_sigma

    def test_cori_more_duplicates(self):
        """Paper: 54 % duplicates on Cori vs 23.5 % on Theta."""
        assert cori_config().workload.duplicate_fraction > theta_config().workload.duplicate_fraction

    def test_preset_lookup(self):
        assert preset("theta").platform.name == "theta"
        assert preset("CORI").platform.name == "cori"

    def test_preset_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown platform preset"):
            preset("summit")

    def test_preset_n_jobs_override(self):
        assert preset("theta", n_jobs=123).workload.n_jobs == 123

    def test_registry_complete(self):
        assert set(PRESETS) == {"theta", "cori"}


class TestSimulationConfig:
    def test_with_jobs_returns_copy(self):
        cfg = theta_config()
        cfg2 = cfg.with_jobs(500)
        assert cfg2.workload.n_jobs == 500
        assert cfg.workload.n_jobs != 500 or cfg is not cfg2

    def test_with_seed(self):
        assert theta_config().with_seed(99).seed == 99

    def test_frozen(self):
        cfg = theta_config()
        with pytest.raises(Exception):
            cfg.seed = 1  # type: ignore[misc]

    def test_default_construction(self):
        cfg = SimulationConfig()
        assert cfg.workload.n_jobs > 0
        assert cfg.platform.n_ost > 0
