"""Tier-1 test configuration.

Registers the ``serve`` and ``gateway`` markers so the serving-layer
tests can be selected (``-m serve``, ``-m gateway``) or excluded
(``-m "not serve"``) while still running in the default tier-1 sweep.
"""


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "serve: batched inference service tests (registry/micro-batcher/cache); tier-1",
    )
    config.addinivalue_line(
        "markers",
        "gateway: multi-model serving gateway + adaptive tuner tests; tier-1",
    )
