"""Tier-1 test configuration.

Registers the serve-stack markers so its tests can be selected or
excluded while still running in the default tier-1 sweep:

* ``serve`` — the whole batched-inference layer (registry, micro-batcher,
  cache, service); every serve-stack test carries it, so
  ``-m "serve or gateway or shard"`` (the verify skill's smoke target) is
  the one-flag serve regression gate.
* ``gateway`` — multi-model :class:`ServingGateway` routing plus the
  :class:`AdaptiveBatchTuner` (including the hypothesis property suites,
  which drive the tuner with an injected clock and fake batchers).
* ``shard`` — the process-sharded :class:`ShardedServingCluster`: worker
  warm-start from pickled frozen models, hash/replicated routing,
  broadcast mutations, crash containment.  These tests fork worker
  processes; they stay tier-1 but are the ones to deselect
  (``-m "not shard"``) on platforms where subprocesses are awkward.
"""


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "serve: batched inference service tests (registry/micro-batcher/cache); tier-1",
    )
    config.addinivalue_line(
        "markers",
        "gateway: multi-model serving gateway + adaptive tuner tests; tier-1",
    )
    config.addinivalue_line(
        "markers",
        "shard: process-sharded serving cluster tests (fork worker processes); tier-1",
    )
