"""Tier-1 test configuration.

Registers the serve-stack markers so its tests can be selected or
excluded while still running in the default tier-1 sweep:

* ``serve`` — the whole batched-inference layer (registry, micro-batcher,
  cache, service); every serve-stack test carries it, so
  ``-m "serve or gateway or shard"`` (the verify skill's smoke target) is
  the one-flag serve regression gate.
* ``gateway`` — multi-model :class:`ServingGateway` routing plus the
  :class:`AdaptiveBatchTuner` (including the hypothesis property suites,
  which drive the tuner with an injected clock and fake batchers).
* ``shard`` — the process-sharded :class:`ShardedServingCluster`: worker
  warm-start from pickled frozen models, hash/replicated routing,
  broadcast mutations, crash containment.  These tests fork worker
  processes; they stay tier-1 but are the ones to deselect
  (``-m "not shard"``) on platforms where subprocesses are awkward.
* ``monitor`` — the online error-source monitoring plane
  (:mod:`repro.serve.monitor`): windowed drift/EU scoring, shadow
  champion–challenger evaluation, and the policy engine's
  alert/promote/rollback actions.  Its contracts are the ones these
  tests pin: purely observational (monitored serving bit-identical to
  unmonitored), bounded-memory ring windows, deterministic under an
  injected clock.
* ``faults`` — the operational error taxonomy and resilience plane
  (:mod:`repro.serve.errors` / :mod:`repro.serve.resilience`): coded
  error vocabulary at every boundary, retry/backoff/circuit-breaker
  trajectories (pure functions of injected clock + seed), and
  fault-injection storms (kill-during-flight with supervisor respawn —
  every request bit-identical or coded non-retryable, never hung).
* ``net`` — the asyncio network front door (:mod:`repro.serve.net`):
  frame-protocol fuzzing (truncated/oversized/malformed frames answer
  with a coded wire error or a clean close, never a hang), FIFO response
  order per connection, bit-identity across the wire, and
  admission-control shedding (structured ``OVERLOADED``).
* ``transport`` — the pluggable shard transport layer
  (:mod:`repro.serve.transport`): binary ndarray frame round-trips
  (hypothesis-driven over dtypes/orders/shapes), the envelope+blob
  socket codec's type parity with the pipe, the listener handshake,
  pipe-vs-socket cluster bit-identity, and the work-stealing
  dispatcher's FIFO/bit-identity guarantees.  Tests that fork worker
  processes also carry ``shard``.
* ``chaos`` — the storm-scale soak harness (:mod:`repro.serve.chaos`)
  and the SLO autoscaler (:mod:`repro.serve.autoscale`): fast-mode
  kill-storm soak under live mutation churn (bit-identity witness, zero
  client-visible transient errors), poisoned-flood fail-fast, and
  hypothesis determinism properties for the autoscaler trajectory.
* ``obs`` — the observability plane (:mod:`repro.serve.obs`): bounded
  span rings with exemplar capture, the frozen span vocabulary, the
  unified metrics registry (Prometheus/JSON exports agree with
  ``ClusterStats`` exactly), structured trace-correlated logging, and
  the end-to-end trace-completeness witness (≥ 6 distinct stages
  reassembled by trace id across a socket cluster) plus the
  traced == untraced bit-identity soak.  Tests that fork worker
  processes also carry ``shard``/``net``.
  The smoke target is
  ``-m "serve or gateway or shard or monitor or faults or net or transport or chaos or obs"``.
"""


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "serve: batched inference service tests (registry/micro-batcher/cache); tier-1",
    )
    config.addinivalue_line(
        "markers",
        "gateway: multi-model serving gateway + adaptive tuner tests; tier-1",
    )
    config.addinivalue_line(
        "markers",
        "shard: process-sharded serving cluster tests (fork worker processes); tier-1",
    )
    config.addinivalue_line(
        "markers",
        "monitor: online monitoring plane tests (drift/EU/shadow/policy); tier-1",
    )
    config.addinivalue_line(
        "markers",
        "faults: error taxonomy + resilience plane tests (fault injection); tier-1",
    )
    config.addinivalue_line(
        "markers",
        "net: asyncio network front door tests (frames/FIFO/admission); tier-1",
    )
    config.addinivalue_line(
        "markers",
        "transport: pluggable shard transport tests (codec/handshake/stealing); tier-1",
    )
    config.addinivalue_line(
        "markers",
        "chaos: storm-scale soak harness + SLO autoscaler tests; tier-1",
    )
    config.addinivalue_line(
        "markers",
        "obs: observability plane tests (tracing/metrics/logging); tier-1",
    )
