"""Tier-1 test configuration.

Registers the ``serve`` marker so the batched-inference-service tests can
be selected (``-m serve``) or excluded (``-m "not serve"``) while still
running in the default tier-1 sweep.
"""


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "serve: batched inference service tests (registry/micro-batcher/cache); tier-1",
    )
