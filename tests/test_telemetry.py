"""Tests for the telemetry generators (Darshan POSIX, MPI-IO, Cobalt, LMT)."""

import numpy as np
import pytest

from repro.config import cori_config, theta_config
from repro.rng import RngFactory, generator_from
from repro.simulator import simulate
from repro.simulator.applications import sample_variants
from repro.simulator.job import LATENT_COLUMNS
from repro.telemetry import (
    COBALT_FEATURES,
    LMT_FEATURES,
    MPIIO_FEATURES,
    POSIX_FEATURES,
    cobalt_features,
    lmt_features,
    mpiio_features,
    posix_features,
)
from repro.telemetry.darshan import size_histogram
from repro.telemetry.schema import SIZE_BUCKETS


def _variant_params(n=100, family="qb", seed=0):
    return sample_variants(family, generator_from(seed), n)


class TestSchema:
    def test_paper_feature_counts(self):
        """§V: 48 POSIX, 48 MPI-IO, 37 LMT, 5 Cobalt."""
        assert len(POSIX_FEATURES) == 48
        assert len(MPIIO_FEATURES) == 48
        assert len(LMT_FEATURES) == 37
        assert len(COBALT_FEATURES) == 5

    def test_unique_names(self):
        allnames = POSIX_FEATURES + MPIIO_FEATURES + LMT_FEATURES + COBALT_FEATURES
        assert len(set(allnames)) == len(allnames)

    def test_no_timing_features_in_posix(self):
        """The paper removes Darshan timing (F_) counters (§VI.C)."""
        assert not any("_F_" in n or "TIME" in n for n in POSIX_FEATURES)


class TestSizeHistogram:
    def test_total_ops_preserved_approximately(self):
        ops = np.array([1000.0])
        hist = size_histogram(ops, np.array([2.0**20]))
        assert abs(hist.sum() - 1000.0) <= 3  # floor() rounding only

    def test_home_bucket_dominates(self):
        hist = size_histogram(np.array([1000.0]), np.array([2.0**20]))  # 1 MiB
        labels = [b[0] for b in SIZE_BUCKETS]
        assert hist[0, labels.index("1M_4M")] == pytest.approx(720.0)

    def test_smallest_bucket_gets_headers(self):
        hist = size_histogram(np.array([1000.0]), np.array([2.0**20]))
        assert hist[0, 0] >= 100.0 - 1


class TestPosix:
    def test_shape_and_order(self):
        X = posix_features(_variant_params(64))
        assert X.shape == (64, 48)

    def test_deterministic(self):
        p = _variant_params(32)
        np.testing.assert_array_equal(posix_features(p), posix_features(p))

    def test_duplicates_identical_rows(self):
        """Two jobs with the same latent config must be feature-identical."""
        p = _variant_params(8)
        doubled = {k: np.concatenate([v, v]) for k, v in p.items()}
        X = posix_features(doubled)
        np.testing.assert_array_equal(X[:8], X[8:])

    def test_bytes_sum_to_total(self):
        p = _variant_params(40)
        X = posix_features(p)
        br = X[:, POSIX_FEATURES.index("POSIX_BYTES_READ")]
        bw = X[:, POSIX_FEATURES.index("POSIX_BYTES_WRITTEN")]
        np.testing.assert_allclose(br + bw, p["total_bytes"], rtol=1e-12)

    def test_nonnegative_counters(self):
        X = posix_features(_variant_params(100, family="pwx"))
        assert X.min() >= 0

    def test_seq_counts_bounded_by_ops(self):
        X = posix_features(_variant_params(100, family="montage"))
        reads = X[:, POSIX_FEATURES.index("POSIX_READS")]
        seq_reads = X[:, POSIX_FEATURES.index("POSIX_SEQ_READS")]
        assert np.all(seq_reads <= reads + 1)

    def test_collective_shifts_histogram_to_large_buckets(self):
        """Post-aggregation POSIX view: collective jobs show >=4MiB accesses."""
        base = _variant_params(1, family="pwx", seed=3)
        for key in base:
            base[key] = base[key][:1]
        base["uses_mpiio"] = np.array([True])
        base["xfer_write"] = np.array([4096.0])
        base["read_frac"] = np.array([0.0])
        labels = [b[0] for b in SIZE_BUCKETS]
        col = POSIX_FEATURES.index(f"POSIX_SIZE_WRITE_{labels[6]}")  # 4M_10M

        direct = dict(base, collective_frac=np.array([0.0]))
        coll = dict(base, collective_frac=np.array([1.0]))
        assert posix_features(coll)[0, col] > posix_features(direct)[0, col]
        assert posix_features(coll)[0, col] > 0


class TestMpiio:
    def test_zero_rows_without_mpiio(self):
        p = _variant_params(50, family="montage")  # never MPI-IO
        X = mpiio_features(p)
        np.testing.assert_array_equal(X, 0.0)

    def test_bytes_match_posix_for_mpiio_jobs(self):
        """All MPI-IO requests are visible at the POSIX level (§V)."""
        p = _variant_params(200, family="qb")
        Xm = mpiio_features(p)
        Xp = posix_features(p)
        uses = p["uses_mpiio"]
        bm = Xm[uses, MPIIO_FEATURES.index("MPIIO_BYTES_READ")]
        bp = Xp[uses, POSIX_FEATURES.index("POSIX_BYTES_READ")]
        np.testing.assert_allclose(bm, bp, rtol=1e-12)

    def test_coll_plus_indep_equals_total(self):
        p = _variant_params(200, family="qb")
        X = mpiio_features(p)
        uses = p["uses_mpiio"]
        idx = lambda n: MPIIO_FEATURES.index(n)
        total = (
            X[uses, idx("MPIIO_INDEP_READS")] + X[uses, idx("MPIIO_COLL_READS")]
        )
        assert np.all(total > 0)

    def test_shape(self):
        assert mpiio_features(_variant_params(10)).shape == (10, 48)


class TestCobalt:
    def test_shape_and_content(self):
        res = simulate(theta_config(n_jobs=500))
        X = cobalt_features(res.jobs, generator_from(0))
        assert X.shape == (len(res.jobs), 5)
        start = X[:, COBALT_FEATURES.index("COBALT_START_TIMESTAMP")]
        end = X[:, COBALT_FEATURES.index("COBALT_END_TIMESTAMP")]
        assert np.all(end > start)
        placement = X[:, COBALT_FEATURES.index("COBALT_PLACEMENT_SCORE")]
        assert np.all((placement >= 0) & (placement <= 1))

    def test_end_time_breaks_duplicates(self):
        """Realized end timestamps differ even for identical jobs (§VI.C)."""
        res = simulate(theta_config(n_jobs=2000))
        X = cobalt_features(res.jobs, generator_from(0))
        counts = np.bincount(res.jobs.variant_id)
        vid = int(np.argmax(counts))
        members = np.flatnonzero(res.jobs.variant_id == vid)
        ends = X[members, COBALT_FEATURES.index("COBALT_END_TIMESTAMP")]
        assert np.unique(ends).size == members.size


class TestLmt:
    def setup_method(self):
        cfg = cori_config(n_jobs=800)
        self.res = simulate(cfg)
        self.cfg = cfg

    def _features(self, noise=0.08):
        return lmt_features(
            self.res.jobs, self.res.weather, self.res.timeline, self.res.background,
            self.res.platform, self.cfg.workload.start_epoch,
            RngFactory(0).get("lmt"), measurement_noise=noise,
        )

    def test_shape(self):
        assert self._features().shape == (len(self.res.jobs), 37)

    def test_min_le_mean_le_max(self):
        X = self._features()
        i = LMT_FEATURES.index
        assert np.all(X[:, i("LMT_OSS_CPU_PCT_MIN")] <= X[:, i("LMT_OSS_CPU_PCT_MEAN")] + 1e-9)
        assert np.all(X[:, i("LMT_OSS_CPU_PCT_MEAN")] <= X[:, i("LMT_OSS_CPU_PCT_MAX")] + 1e-9)

    def test_fullness_percent_range(self):
        X = self._features()
        f = X[:, LMT_FEATURES.index("LMT_FULLNESS_PCT_MEAN")]
        assert np.all((f >= 0) & (f <= 100))

    def test_lmt_observes_weather(self):
        """OSS CPU must correlate with the true global state ζg(t)."""
        X = self._features(noise=0.0)
        cpu = X[:, LMT_FEATURES.index("LMT_OSS_CPU_PCT_MEAN")]
        fg = self.res.jobs.fg_dex
        r = np.corrcoef(cpu, fg)[0, 1]
        assert r < -0.3  # bad weather (negative fg) -> high server CPU

    def test_server_counts_constant(self):
        X = self._features()
        assert np.unique(X[:, LMT_FEATURES.index("LMT_N_OSS_ACTIVE")]).size == 1

    def test_measurement_noise_changes_values(self):
        a = self._features(noise=0.0)
        b = self._features(noise=0.2)
        assert not np.allclose(a[:, 2], b[:, 2])
