"""Round-trip tests for the darshan-parser text format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import theta_config
from repro.data import build_dataset, find_duplicate_sets
from repro.telemetry.darshan_text import (
    DarshanRecord,
    dump_dataset,
    load_logs,
    parse_log,
    render_log,
)
from repro.telemetry.schema import MPIIO_FEATURES, POSIX_FEATURES


def _record(seed=0, with_mpiio=True):
    rng = np.random.default_rng(seed)
    posix = {name: float(rng.integers(0, 10**9)) for name in POSIX_FEATURES}
    mpiio = {name: float(rng.integers(0, 10**6)) for name in MPIIO_FEATURES} if with_mpiio else {}
    return DarshanRecord(
        job_id=int(rng.integers(0, 10**6)),
        nprocs=int(rng.integers(1, 4096)),
        start_time=float(rng.uniform(1.4e9, 1.6e9)),
        end_time=float(rng.uniform(1.6e9, 1.7e9)),
        exe="pw.x",
        posix=posix,
        mpiio=mpiio,
    )


class TestRoundTrip:
    def test_counters_survive_exactly(self):
        rec = _record()
        back = parse_log(render_log(rec))
        assert back.posix == rec.posix
        assert back.mpiio == rec.mpiio

    def test_header_survives(self):
        rec = _record(seed=1)
        back = parse_log(render_log(rec))
        assert back.job_id == rec.job_id
        assert back.nprocs == rec.nprocs
        assert back.start_time == rec.start_time
        assert back.end_time == rec.end_time
        assert back.exe == rec.exe

    def test_mpiio_section_optional(self):
        rec = _record(with_mpiio=False)
        text = render_log(rec)
        assert "MPI-IO module" not in text
        back = parse_log(text)
        assert not back.has_mpiio
        np.testing.assert_array_equal(back.mpiio_row(), np.zeros(len(MPIIO_FEATURES)))

    @settings(max_examples=30, deadline=None)
    @given(st.floats(0.0, 1e15, allow_nan=False), st.floats(0.0, 1.0))
    def test_float_counters_bit_exact(self, big, frac):
        """repr() round-trip must be bit-exact for any counter value."""
        rec = _record(seed=2)
        rec.posix["POSIX_BYTES_READ"] = big + frac
        back = parse_log(render_log(rec))
        assert back.posix["POSIX_BYTES_READ"] == big + frac

    def test_rows_in_schema_order(self):
        rec = _record(seed=3)
        row = parse_log(render_log(rec)).posix_row()
        assert row[POSIX_FEATURES.index("POSIX_OPENS")] == rec.posix["POSIX_OPENS"]

    def test_missing_counter_raises_on_row(self):
        rec = _record(seed=4)
        back = parse_log(render_log(rec))
        del back.posix["POSIX_OPENS"]  # simulate a truncated log
        with pytest.raises(ValueError, match="POSIX_OPENS"):
            back.posix_row()

    def test_garbage_line_rejected(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_log("# jobid: 1\nnot a counter line\n")

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError, match="jobid"):
            parse_log("# nprocs: 4\ntotal_POSIX_OPENS: 1\n")


class TestDatasetDump:
    @pytest.fixture(scope="class")
    def dataset(self):
        return build_dataset(theta_config(n_jobs=300))

    def test_dump_and_load_preserve_features(self, dataset, tmp_path_factory):
        outdir = tmp_path_factory.mktemp("darshan")
        n = dump_dataset(dataset, outdir, limit=50)
        assert n == 50
        records = load_logs(outdir)
        assert len(records) == 50
        rows = np.stack([r.posix_row() for r in records])
        np.testing.assert_array_equal(rows, dataset.frames["posix"][:50])

    def test_duplicates_survive_the_trip(self, dataset, tmp_path_factory):
        """Byte-identical duplicate rows must still be detected after I/O."""
        outdir = tmp_path_factory.mktemp("darshan_dup")
        dump_dataset(dataset, outdir)
        records = load_logs(outdir)
        rows = np.stack([r.posix_row() for r in records])
        before = find_duplicate_sets(dataset.frames["posix"])
        after = find_duplicate_sets(rows)
        assert after.n_sets == before.n_sets
        assert after.n_duplicates == before.n_duplicates

    def test_mpiio_emitted_only_when_used(self, dataset, tmp_path_factory):
        outdir = tmp_path_factory.mktemp("darshan_mpiio")
        dump_dataset(dataset, outdir, limit=200)
        records = load_logs(outdir)
        uses = np.array([r.has_mpiio for r in records])
        frame = dataset.frames["mpiio"][:200]
        np.testing.assert_array_equal(uses, np.any(frame != 0.0, axis=1))
