"""Tests for the batch-scheduler substrate (topology, placement, queue, OST)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduler import (
    BatchScheduler,
    Dragonfly,
    OstStriper,
    PlacementPolicy,
    Torus3D,
    allocation_locality,
    ost_overlap_matrix,
)
from repro.scheduler.ost import per_ost_load


@pytest.fixture(scope="module")
def dfly():
    return Dragonfly(n_groups=4, routers_per_group=6, nodes_per_router=4)


@pytest.fixture(scope="module")
def torus():
    return Torus3D(dims=(4, 4, 4), nodes_per_router=2)


class TestTopology:
    def test_dragonfly_size(self, dfly):
        assert dfly.n_routers == 24
        assert dfly.n_nodes == 96

    def test_dragonfly_diameter_small(self, dfly):
        """Dragonfly promise: any router pair within 3 hops."""
        assert dfly.diameter() <= 3

    def test_intra_group_is_one_hop(self, dfly):
        h = dfly.hop_matrix()
        # routers 0..5 are group 0, all-to-all
        assert np.all(h[:6, :6][~np.eye(6, dtype=bool)] == 1)

    def test_group_of_matches_router_layout(self, dfly):
        nodes = np.arange(dfly.n_nodes)
        groups = dfly.group_of(nodes)
        assert groups[0] == 0
        assert groups[-1] == 3
        assert np.all(np.diff(groups) >= 0)

    def test_torus_coordinates_roundtrip(self, torus):
        nodes = np.arange(torus.n_nodes)
        coords = torus.coordinates(nodes)
        assert coords.shape == (torus.n_nodes, 3)
        assert coords.max() == 3

    def test_torus_wraparound_distance(self, torus):
        # routers 0=(0,0,0) and 48=(3,0,0) are 1 hop via the wrap link
        h = torus.hop_matrix()
        rid = 3 * 16  # (3,0,0) with dy=dz=4
        assert h[0, rid] == 1

    def test_hop_matrix_symmetric_zero_diag(self, dfly):
        h = dfly.hop_matrix()
        assert np.array_equal(h, h.T)
        assert np.all(np.diag(h) == 0)

    def test_node_id_bounds_checked(self, dfly):
        with pytest.raises(IndexError):
            dfly.router_of(np.array([dfly.n_nodes]))

    def test_rejects_degenerate_configs(self):
        with pytest.raises(ValueError):
            Dragonfly(n_groups=1)
        with pytest.raises(ValueError):
            Torus3D(dims=(1, 4, 4))


class TestPlacement:
    def test_contiguous_takes_lowest_ids(self, dfly):
        pol = PlacementPolicy(dfly, "contiguous")
        a = pol.allocate(8)
        np.testing.assert_array_equal(a.node_ids, np.arange(8))

    def test_allocate_release_cycle(self, dfly):
        pol = PlacementPolicy(dfly, "contiguous")
        a = pol.allocate(10)
        assert pol.n_free == dfly.n_nodes - 10
        pol.release(a)
        assert pol.n_free == dfly.n_nodes

    def test_oversubscription_returns_none(self, dfly):
        pol = PlacementPolicy(dfly, "random")
        assert pol.allocate(dfly.n_nodes + 1) is None

    def test_double_release_raises(self, dfly):
        pol = PlacementPolicy(dfly, "contiguous")
        a = pol.allocate(4)
        pol.release(a)
        with pytest.raises(ValueError):
            pol.release(a)

    def test_cluster_policy_tighter_than_random(self, dfly):
        loc = {}
        for policy in ("cluster", "random"):
            pol = PlacementPolicy(dfly, policy, seed=3)
            pol.allocate(30)  # pre-fragment the machine
            a = pol.allocate(16)
            loc[policy] = allocation_locality(dfly, a.node_ids)
        assert loc["cluster"] < loc["random"]

    def test_locality_zero_for_same_router(self, dfly):
        assert allocation_locality(dfly, np.array([0, 1, 2, 3])) == 0.0

    def test_locality_subsampling_stable(self, dfly):
        pol = PlacementPolicy(dfly, "random", seed=0)
        a = pol.allocate(90)
        full = allocation_locality(dfly, a.node_ids, sample=1000)
        sub = allocation_locality(dfly, a.node_ids, sample=32)
        assert abs(full - sub) < 0.5

    def test_unknown_policy_rejected(self, dfly):
        with pytest.raises(ValueError):
            PlacementPolicy(dfly, "teleport")


class TestBatchScheduler:
    def _trace(self, n=40, seed=0, machine_nodes=96):
        rng = np.random.default_rng(seed)
        submit = np.sort(rng.uniform(0.0, 2000.0, n))
        nodes = rng.integers(1, machine_nodes // 3, n)
        wall = rng.uniform(60.0, 1200.0, n)
        return submit, nodes, wall

    def test_schedules_all_jobs(self, dfly):
        submit, nodes, wall = self._trace()
        sched = BatchScheduler(PlacementPolicy(dfly, "contiguous"))
        jobs, stats = sched.run(submit, nodes, wall)
        assert len(jobs) == 40
        assert stats.n_jobs == 40

    def test_no_job_starts_before_submission(self, dfly):
        submit, nodes, wall = self._trace(seed=1)
        jobs, _ = BatchScheduler(PlacementPolicy(dfly, "random")).run(submit, nodes, wall)
        for j in jobs:
            assert j.start_time >= j.submit_time - 1e-9

    def test_capacity_never_exceeded(self, dfly):
        submit, nodes, wall = self._trace(seed=2)
        jobs, _ = BatchScheduler(PlacementPolicy(dfly, "contiguous")).run(submit, nodes, wall)
        events = sorted(
            [(j.start_time, j.n_nodes) for j in jobs] + [(j.end_time, -j.n_nodes) for j in jobs]
        )
        in_use = 0
        for _, delta in events:
            in_use += delta
            assert in_use <= dfly.n_nodes

    def test_allocations_disjoint_while_running(self, dfly):
        submit, nodes, wall = self._trace(seed=3)
        jobs, _ = BatchScheduler(PlacementPolicy(dfly, "random")).run(submit, nodes, wall)
        for a in jobs:
            for b in jobs:
                if a.job_id >= b.job_id:
                    continue
                overlap_time = min(a.end_time, b.end_time) - max(a.start_time, b.start_time)
                if overlap_time > 1e-9:
                    shared = np.intersect1d(a.allocation.node_ids, b.allocation.node_ids)
                    assert shared.size == 0

    def test_backfill_reduces_waits(self, dfly):
        # a wide head job blocks the queue; small jobs behind it can slip in
        submit = np.array([0.0, 1.0, 2.0, 3.0])
        nodes = np.array([90, 95, 2, 2])
        wall = np.array([500.0, 500.0, 50.0, 50.0])
        easy_jobs, easy = BatchScheduler(PlacementPolicy(dfly, "contiguous")).run(submit, nodes, wall)
        fcfs_jobs, fcfs = BatchScheduler(
            PlacementPolicy(dfly, "contiguous"), backfill=False
        ).run(submit, nodes, wall)
        assert easy.mean_wait < fcfs.mean_wait
        assert any(j.backfilled for j in easy_jobs)
        assert not any(j.backfilled for j in fcfs_jobs)

    def test_backfill_never_delays_blocked_head(self, dfly):
        """EASY invariant: backfilled jobs do not delay the blocked head.

        (The guarantee is per-decision — deep-queue jobs *can* start later
        than under FCFS — so it is tested on a deterministic blocked-head
        scenario, not a random trace.)
        """
        submit = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        nodes = np.array([90, 95, 3, 3, 2])
        wall = np.array([500.0, 400.0, 100.0, 450.0, 80.0])
        easy_jobs, _ = BatchScheduler(PlacementPolicy(dfly, "contiguous")).run(submit, nodes, wall)
        fcfs_jobs, _ = BatchScheduler(
            PlacementPolicy(dfly, "contiguous"), backfill=False
        ).run(submit, nodes, wall)
        # job 1 is the blocked head; the small jobs slipping in front of it
        # must not move its start time
        assert easy_jobs[1].start_time == pytest.approx(fcfs_jobs[1].start_time)
        assert any(j.backfilled for j in easy_jobs)

    def test_utilization_in_unit_range(self, dfly):
        submit, nodes, wall = self._trace(seed=5)
        _, stats = BatchScheduler(PlacementPolicy(dfly, "contiguous")).run(submit, nodes, wall)
        assert 0.0 < stats.utilization <= 1.0

    def test_input_validation(self, dfly):
        sched = BatchScheduler(PlacementPolicy(dfly, "contiguous"))
        with pytest.raises(ValueError):
            sched.run(np.zeros(3), np.ones(2, dtype=int), np.ones(3))
        with pytest.raises(ValueError):
            sched.run(np.zeros(1), np.array([0]), np.ones(1))
        with pytest.raises(ValueError):
            sched.run(np.zeros(1), np.array([1]), np.array([-5.0]))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(5, 25), st.integers(0, 1000))
    def test_conservation_property(self, n, seed):
        """Every submitted job eventually runs, exactly once."""
        topo = Dragonfly(n_groups=3, routers_per_group=4, nodes_per_router=2)
        rng = np.random.default_rng(seed)
        submit = np.sort(rng.uniform(0, 500, n))
        nodes = rng.integers(1, topo.n_nodes + 1, n)
        wall = rng.uniform(10, 300, n)
        jobs, _ = BatchScheduler(PlacementPolicy(topo, "contiguous")).run(submit, nodes, wall)
        assert sorted(j.job_id for j in jobs) == list(range(n))


class TestOstStriping:
    def test_roundrobin_covers_all_osts(self):
        striper = OstStriper(n_ost=8, policy="roundrobin")
        seen = set()
        for _ in range(4):
            seen.update(striper.assign(2).ost_ids.tolist())
        assert seen == set(range(8))

    def test_width_clamped_to_pool(self):
        striper = OstStriper(n_ost=4)
        assert striper.assign(100).width == 4

    def test_balanced_policy_picks_cold_targets(self):
        striper = OstStriper(n_ost=6, policy="balanced")
        a1 = striper.assign(3, demand=9.0)
        a2 = striper.assign(3, demand=9.0)
        assert np.intersect1d(a1.ost_ids, a2.ost_ids).size == 0

    def test_release_removes_pressure(self):
        striper = OstStriper(n_ost=4, policy="roundrobin")
        a = striper.assign(2, demand=8.0)
        assert striper.load.sum() == pytest.approx(8.0)
        striper.release(a, demand=8.0)
        assert striper.load.sum() == pytest.approx(0.0)

    def test_overlap_matrix_properties(self):
        striper = OstStriper(n_ost=8, policy="roundrobin")
        assigns = [striper.assign(4) for _ in range(3)]
        M = ost_overlap_matrix(assigns, 8)
        assert M.shape == (3, 3)
        assert np.all(np.diag(M) == 0.0)
        assert np.all((M >= 0.0) & (M <= 1.0))
        # stripes 0 (OST 0-3) and 1 (OST 4-7) are disjoint; 2 (OST 0-3) == 0
        assert M[0, 1] == 0.0
        assert M[0, 2] == 1.0

    def test_per_ost_load_splits_demand(self):
        striper = OstStriper(n_ost=4, policy="roundrobin")
        assigns = [striper.assign(2), striper.assign(2)]
        load = per_ost_load(assigns, np.array([4.0, 8.0]), 4)
        np.testing.assert_allclose(load, [2.0, 2.0, 4.0, 4.0])

    def test_identical_jobs_draw_different_neighbor_sets(self):
        """The mechanism behind the engine's placement-luck term."""
        striper = OstStriper(n_ost=32, policy="random", seed=7)
        a1 = striper.assign(8)
        a2 = striper.assign(8)
        assert not np.array_equal(a1.ost_ids, a2.ost_ids)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            OstStriper(n_ost=0)
        with pytest.raises(ValueError):
            OstStriper(n_ost=4, policy="psychic")
        with pytest.raises(ValueError):
            per_ost_load([], np.array([1.0]), 4)
