"""Tests for feature preprocessing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.preprocessing import Standardizer, signed_log1p


class TestSignedLog1p:
    def test_zero_fixed_point(self):
        assert signed_log1p(np.array([0.0]))[0] == 0.0

    def test_odd_function(self):
        x = np.array([1.0, 10.0, 1e6])
        np.testing.assert_allclose(signed_log1p(-x), -signed_log1p(x))

    def test_compresses_magnitudes(self):
        out = signed_log1p(np.array([1e12]))
        assert out[0] == pytest.approx(12.0, abs=0.01)

    @given(arrays(np.float64, 10, elements=st.floats(-1e9, 1e9)))
    def test_monotone_property(self, x):
        order = np.argsort(x)
        out = signed_log1p(x)
        assert np.all(np.diff(out[order]) >= -1e-12)


class TestStandardizer:
    def test_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        X = rng.lognormal(3, 2, (500, 4))
        Z = Standardizer().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_no_nan(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = Standardizer().fit_transform(X)
        assert np.all(np.isfinite(Z))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            Standardizer().transform(np.zeros((2, 2)))

    def test_feature_count_mismatch_raises(self):
        s = Standardizer().fit(np.zeros((5, 3)))
        with pytest.raises(ValueError, match="feature count mismatch"):
            s.transform(np.zeros((5, 4)))

    def test_no_log_mode(self):
        X = np.column_stack([np.arange(10.0)])
        s = Standardizer(log_compress=False).fit(X)
        Z = s.transform(X)
        np.testing.assert_allclose(Z.mean(), 0.0, atol=1e-12)

    def test_train_statistics_applied_to_test(self):
        X_train = np.full((4, 1), 10.0)
        s = Standardizer(log_compress=False).fit(X_train)
        Z = s.transform(np.full((2, 1), 20.0))
        # scale_ forced to 1 for constant column; shift by mean 10
        np.testing.assert_allclose(Z, 10.0)
