"""Tests for the parallel map and sweep engine."""

import numpy as np
import pytest

from repro.parallel.pool import _chunks, effective_workers, parallel_map
from repro.parallel.sweep import ParamGrid, run_grid, run_random_search


def _square(x):
    return x * x


class TestParallelMap:
    def test_order_preserved(self):
        assert parallel_map(_square, range(10), workers=1) == [x * x for x in range(10)]

    def test_empty(self):
        assert parallel_map(_square, [], workers=1) == []

    def test_single_item(self):
        assert parallel_map(_square, [3], workers=4) == [9]

    def test_chunks_cover_all(self):
        items = list(range(17))
        chunks = _chunks(items, 4)
        flat = [x for c in chunks for x in c]
        assert flat == items

    def test_chunks_more_chunks_than_items(self):
        chunks = _chunks([1, 2], 10)
        assert [x for c in chunks for x in c] == [1, 2]

    def test_effective_workers_floor(self):
        assert effective_workers(0) == 1
        assert effective_workers(-3) == 1

    def test_effective_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert effective_workers(None) == 3


class TestParamGrid:
    def test_len(self):
        grid = ParamGrid(a=[1, 2], b=[3, 4, 5])
        assert len(grid) == 6

    def test_iteration_covers_product(self):
        grid = ParamGrid(a=[1, 2], b=["x", "y"])
        combos = list(grid)
        assert {(c["a"], c["b"]) for c in combos} == {(1, "x"), (1, "y"), (2, "x"), (2, "y")}

    def test_axis(self):
        grid = ParamGrid(a=[1, 2], b=[3])
        assert grid.axis("b") == [3]

    def test_empty_param_raises(self):
        with pytest.raises(ValueError):
            ParamGrid(a=[])

    def test_no_params_raises(self):
        with pytest.raises(ValueError):
            ParamGrid()


def _objective(a, b):
    return (a - 2) ** 2 + b


class TestRunGrid:
    def test_sorted_by_score(self):
        results = run_grid(_objective, ParamGrid(a=[0, 1, 2, 3], b=[0, 1]), workers=1)
        scores = [r.score for r in results]
        assert scores == sorted(scores)

    def test_best_found(self):
        results = run_grid(_objective, ParamGrid(a=[0, 1, 2, 3], b=[0, 1]), workers=1)
        assert results[0].params == {"a": 2, "b": 0}

    def test_info_dict_passthrough(self):
        def obj(a):
            return a, {"tag": a * 10}

        results = run_grid(obj, ParamGrid(a=[2, 1]), workers=1)
        assert results[0].info == {"tag": 10}


class TestRandomSearch:
    def test_draws_within_space(self):
        results = run_random_search(_objective, {"a": [0, 5], "b": [1]}, n_iter=8, seed=0, workers=1)
        assert len(results) == 8
        for r in results:
            assert r.params["a"] in (0, 5) and r.params["b"] == 1

    def test_reproducible(self):
        r1 = run_random_search(_objective, {"a": [0, 1, 2], "b": [0, 1]}, 5, seed=3, workers=1)
        r2 = run_random_search(_objective, {"a": [0, 1, 2], "b": [0, 1]}, 5, seed=3, workers=1)
        assert [r.params for r in r1] == [r.params for r in r2]
