"""Operational error taxonomy: frozen codes, classification, wire format.

Pins the vocabulary's wire-stability contract (numbers, severities, and
retryable flags never change once shipped), the annotation-first
classifier, the dict round-trip every boundary speaks, and — most
load-bearing — that the codes actually *survive the plumbing*: pickling
through worker pipes, the batcher's private-copy exception isolation,
and the registry/batcher/gateway raises that adopted them.
"""

from __future__ import annotations

import copy
import json
import pickle

import numpy as np
import pytest

from repro.serve.batcher import MicroBatcher, _private_exception
from repro.serve.errors import (
    CodedError,
    ErrorCode,
    classify_exception,
    code_of,
    coded,
    ensure_code,
    from_wire,
    to_wire,
)
from repro.serve.registry import ModelRegistry
from repro.serve.router import ServingGateway
from repro.serve.shard import ShardCrashedError, _picklable_exception

pytestmark = [pytest.mark.serve, pytest.mark.faults]


class _Linear:
    """Tiny deterministic stand-in estimator."""

    def fit(self, X, y):
        return self

    def predict(self, X):
        return np.asarray(X, dtype=float).sum(axis=1)


class TestVocabulary:
    # the shipped vocabulary, frozen: a changed number/severity/retryable
    # here is a wire-protocol break, not a refactor
    FROZEN = {
        "MALFORMED_REQUEST": (400, "error", False),
        "UNKNOWN_MODEL": (404, "error", False),
        "UNKNOWN_VERSION": (405, "error", False),
        "NO_PRODUCTION": (406, "error", False),
        "INVALID_MUTATION": (409, "error", False),
        "FRAME_TOO_LARGE": (413, "error", False),
        "INTERNAL": (500, "error", False),
        "SHARD_CRASHED": (503, "critical", True),
        "DEADLINE_EXCEEDED": (504, "warning", True),
        "CLOSED": (507, "error", False),
        "CIRCUIT_OPEN": (508, "warning", True),
        "RESPAWN_FAILED": (509, "critical", True),
        "TRANSPORT_ERROR": (510, "critical", True),
        "OVERLOADED": (513, "warning", True),
        "SLO_BREACH": (514, "warning", False),
        "AUTOSCALE_FAILED": (515, "critical", True),
        "MODEL_RESOLUTION_FAILED": (600, "error", False),
        "SCORING_FAILED": (601, "error", False),
        "REPLICA_DIVERGENCE": (602, "critical", False),
        "REFERENCE_MISSING": (603, "warning", False),
        "POLICY_ACTION_FAILED": (604, "warning", False),
        "DRIFT_DETECTED": (610, "warning", False),
        "OOD_DETECTED": (611, "warning", False),
    }

    def test_shipped_codes_are_frozen(self):
        got = {c.name: (int(c), c.severity, c.retryable) for c in ErrorCode}
        for name, spec in self.FROZEN.items():
            assert got[name] == spec, f"{name} changed — wire-protocol break"

    def test_every_code_has_a_category(self):
        for code in ErrorCode:
            assert code.category in ("client", "transient", "model")

    def test_categories_follow_integer_ranges(self):
        for code in ErrorCode:
            expected = {4: "client", 5: "transient", 6: "model"}[int(code) // 100]
            assert code.category == expected

    def test_client_codes_are_never_retryable(self):
        # resubmitting the same bytes cannot fix a malformed request
        for code in ErrorCode:
            if code.category == "client":
                assert not code.retryable, f"{code.name} must not be retryable"

    def test_internal_is_not_retryable(self):
        # an error nobody classified must never be blind-retried
        assert not ErrorCode.INTERNAL.retryable

    def test_codes_are_ints(self):
        assert ErrorCode.UNKNOWN_MODEL == 404
        assert ErrorCode(503) is ErrorCode.SHARD_CRASHED


class TestClassification:
    def test_annotation_wins_over_type_heuristics(self):
        exc = coded(ValueError("not actually malformed"), ErrorCode.SCORING_FAILED)
        assert classify_exception(exc) is ErrorCode.SCORING_FAILED

    def test_int_annotation_is_coerced(self):
        exc = ValueError("x")
        exc.code = 504
        assert classify_exception(exc) is ErrorCode.DEADLINE_EXCEEDED

    def test_unknown_int_annotation_falls_through(self):
        exc = ValueError("x")
        exc.code = 999
        assert classify_exception(exc) is ErrorCode.MALFORMED_REQUEST

    @pytest.mark.parametrize("exc,expected", [
        (TimeoutError("t"), ErrorCode.DEADLINE_EXCEEDED),
        (BrokenPipeError("p"), ErrorCode.SHARD_CRASHED),
        (ConnectionResetError("c"), ErrorCode.SHARD_CRASHED),
        (EOFError(), ErrorCode.SHARD_CRASHED),
        (LookupError("m"), ErrorCode.UNKNOWN_MODEL),
        (KeyError("k"), ErrorCode.UNKNOWN_MODEL),
        (ValueError("v"), ErrorCode.MALFORMED_REQUEST),
        (TypeError("t"), ErrorCode.MALFORMED_REQUEST),
        (RuntimeError("r"), ErrorCode.INTERNAL),
        (ZeroDivisionError(), ErrorCode.INTERNAL),
    ])
    def test_type_heuristics(self, exc, expected):
        assert classify_exception(exc) is expected
        assert code_of(exc) is expected

    def test_shard_crashed_error_is_coded_by_class(self):
        assert classify_exception(ShardCrashedError("down")) is ErrorCode.SHARD_CRASHED

    def test_ensure_code_annotates_in_place(self):
        exc = RuntimeError("boom")
        assert ensure_code(exc) is exc
        assert exc.code is ErrorCode.INTERNAL

    def test_ensure_code_default_replaces_only_the_internal_fallback(self):
        assert ensure_code(RuntimeError("x"), ErrorCode.SCORING_FAILED).code \
            is ErrorCode.SCORING_FAILED
        # a type the classifier already understands keeps its mapping
        assert ensure_code(ValueError("x"), ErrorCode.SCORING_FAILED).code \
            is ErrorCode.MALFORMED_REQUEST
        # an explicit upstream annotation always wins
        exc = coded(RuntimeError("x"), ErrorCode.REPLICA_DIVERGENCE)
        assert ensure_code(exc, ErrorCode.SCORING_FAILED).code \
            is ErrorCode.REPLICA_DIVERGENCE

    def test_coded_error_type(self):
        err = CodedError("refusing traffic", code=ErrorCode.CIRCUIT_OPEN)
        assert classify_exception(err) is ErrorCode.CIRCUIT_OPEN
        assert "refusing traffic" in str(err)


class TestWireFormat:
    def test_to_wire_from_exception(self):
        w = to_wire(coded(LookupError("no model 'x'"), ErrorCode.UNKNOWN_MODEL))
        assert w == {
            "code": 404, "name": "UNKNOWN_MODEL", "category": "client",
            "severity": "error", "retryable": False, "type": "LookupError",
            "detail": "no model 'x'",
        }

    def test_to_wire_from_bare_code(self):
        w = to_wire(ErrorCode.SHARD_CRASHED, detail="shard 2 died")
        assert w["type"] == "ErrorCode"
        assert w["retryable"] is True
        assert w["detail"] == "shard 2 died"

    def test_wire_payload_is_json_safe(self):
        for code in ErrorCode:
            json.dumps(to_wire(code))

    def test_roundtrip(self):
        original = coded(TimeoutError("too slow"), ErrorCode.DEADLINE_EXCEEDED)
        back = from_wire(to_wire(original))
        assert back.code is ErrorCode.DEADLINE_EXCEEDED
        assert back.wire_type == "TimeoutError"
        assert "too slow" in str(back)

    def test_unknown_code_degrades_to_internal(self):
        err = from_wire({"code": 999, "detail": "from the future"})
        assert err.code is ErrorCode.INTERNAL
        assert "from the future" in str(err)

    def test_garbage_payload_degrades_to_internal(self):
        assert from_wire({}).code is ErrorCode.INTERNAL
        assert from_wire({"code": "nope"}).code is ErrorCode.INTERNAL


class TestCodeSurvivesPlumbing:
    def test_pickle_roundtrip_keeps_code(self):
        exc = coded(ValueError("bad row"), ErrorCode.MALFORMED_REQUEST)
        assert pickle.loads(pickle.dumps(exc)).code is ErrorCode.MALFORMED_REQUEST

    def test_private_exception_copy_keeps_code(self):
        # the batcher hands every ticket its own copy of a shared failure;
        # the copy must stay classifiable
        exc = coded(RuntimeError("resolution"), ErrorCode.MODEL_RESOLUTION_FAILED)
        clone = _private_exception(exc)
        assert clone is not exc
        assert classify_exception(clone) is ErrorCode.MODEL_RESOLUTION_FAILED

    def test_picklable_exception_flattening_keeps_code(self):
        class Unpicklable(RuntimeError):
            def __init__(self, lock):
                super().__init__("worker failure")
                self.lock = lock

        import threading
        exc = coded(Unpicklable(threading.Lock()), ErrorCode.SCORING_FAILED)
        flat = _picklable_exception(exc)
        assert type(flat) is RuntimeError  # flattened for the pipe
        assert classify_exception(flat) is ErrorCode.SCORING_FAILED
        pickle.dumps(flat)

    def test_copy_keeps_code(self):
        exc = coded(LookupError("x"), ErrorCode.UNKNOWN_VERSION)
        assert copy.copy(exc).code is ErrorCode.UNKNOWN_VERSION


class TestBoundaryAdoption:
    """The existing exception types keep raising — now coded."""

    def test_registry_unknown_name(self):
        with pytest.raises(LookupError) as info:
            ModelRegistry().get("ghost")
        assert code_of(info.value) is ErrorCode.UNKNOWN_MODEL

    def test_registry_unknown_version(self):
        reg = ModelRegistry()
        reg.register("m", _Linear().fit(np.zeros((2, 2)), np.zeros(2)))
        with pytest.raises(LookupError) as info:
            reg.promote("m", 99)
        assert code_of(info.value) is ErrorCode.UNKNOWN_VERSION

    def test_registry_no_production(self):
        reg = ModelRegistry()
        reg.register("m", _Linear().fit(np.zeros((2, 2)), np.zeros(2)))
        with pytest.raises(LookupError) as info:
            reg.get("m")
        assert code_of(info.value) is ErrorCode.NO_PRODUCTION

    def test_monitor_watch_without_reference(self):
        from repro.serve.monitor import MonitoringPlane

        reg = ModelRegistry()
        reg.register("m", _Linear().fit(np.zeros((2, 2)), np.zeros(2)),
                     promote=True)
        plane = MonitoringPlane(reg)
        with pytest.raises(ValueError) as info:
            plane.watch("m")
        assert code_of(info.value) is ErrorCode.REFERENCE_MISSING

    def test_registry_invalid_mutation(self):
        reg = ModelRegistry()
        reg.register("m", _Linear().fit(np.zeros((2, 2)), np.zeros(2)), promote=True)
        with pytest.raises(ValueError) as info:
            reg.unregister("m", 1)  # cannot drop production
        assert code_of(info.value) is ErrorCode.INVALID_MUTATION

    def test_batcher_malformed_kind_and_shape(self):
        with MicroBatcher(_Linear(), max_batch=4, max_delay=0.5) as mb:
            with pytest.raises(ValueError) as info:
                mb.submit(np.zeros(3), kind="explain")
            assert code_of(info.value) is ErrorCode.MALFORMED_REQUEST
            with pytest.raises(ValueError) as info:
                mb.submit(np.zeros((2, 2, 2)))
            assert code_of(info.value) is ErrorCode.MALFORMED_REQUEST

    def test_batcher_closed(self):
        mb = MicroBatcher(_Linear(), max_batch=4, max_delay=0.5)
        mb.close()
        with pytest.raises(RuntimeError) as info:
            mb.submit(np.zeros(3))
        assert code_of(info.value) is ErrorCode.CLOSED

    def test_batcher_scoring_failure_is_coded(self):
        class Broken:
            def predict(self, X):
                raise RuntimeError("model exploded")

        with MicroBatcher(Broken(), max_batch=64, max_delay=5.0) as mb:
            ticket = mb.submit(np.zeros(3))
            mb.flush()
            with pytest.raises(RuntimeError) as info:
                ticket.result(timeout=5.0)
            assert code_of(info.value) is ErrorCode.SCORING_FAILED

    def test_batcher_model_resolution_failure_is_coded(self):
        def resolve():
            raise LookupError("no production version")

        with MicroBatcher(resolve, max_batch=64, max_delay=5.0) as mb:
            ticket = mb.submit(np.zeros(3))
            mb.flush()
            with pytest.raises(LookupError) as info:
                ticket.result(timeout=5.0)
            assert code_of(info.value) is ErrorCode.UNKNOWN_MODEL  # annotated upstream

    def test_gateway_unknown_model_and_closed(self):
        reg = ModelRegistry()
        gw = ServingGateway(reg)
        with pytest.raises(LookupError) as info:
            gw.submit("ghost", np.zeros(3))
        assert code_of(info.value) is ErrorCode.UNKNOWN_MODEL
        gw.close()
        with pytest.raises(RuntimeError) as info:
            gw.submit("ghost", np.zeros(3))
        assert code_of(info.value) is ErrorCode.CLOSED

    def test_monitor_event_to_wire_embeds_error_payload(self):
        from repro.serve.monitor.policy import MonitorEvent

        event = MonitorEvent(
            at=1.0, name="m", rule="psi>0.25", action="alert",
            value=0.41, detail="windowed PSI 0.41", code=ErrorCode.DRIFT_DETECTED,
        )
        w = event.to_wire()
        assert w["error"]["code"] == 610
        assert w["error"]["category"] == "model"
        json.dumps(w)
        # uncoded legacy events serialize without an error payload
        legacy = MonitorEvent(at=1.0, name="m", rule="r", action="alert",
                              value=0.0, detail="d")
        assert "error" not in legacy.to_wire()
