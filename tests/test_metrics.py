"""Tests for the paper's Eq. 6 error metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ml.metrics import (
    dex_to_pct,
    error_percentiles,
    log_ratio_error,
    mean_abs_log_ratio,
    median_abs_log_ratio,
    median_abs_pct_error,
    pct_to_dex,
)


class TestLogRatio:
    def test_zero_for_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(log_ratio_error(y, y), 0.0)

    def test_symmetry_over_and_under(self):
        """Eq. 6: log(x) = -log(1/x) — over/underestimation cost the same."""
        y = np.array([2.0])
        over = mean_abs_log_ratio(y, y + 0.3)
        under = mean_abs_log_ratio(y, y - 0.3)
        assert over == pytest.approx(under)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            log_ratio_error(np.zeros(3), np.zeros(4))

    def test_median_resists_outliers(self):
        y = np.zeros(101)
        pred = np.zeros(101)
        pred[0] = 50.0  # one catastrophic miss
        assert median_abs_log_ratio(y, pred) == 0.0
        assert mean_abs_log_ratio(y, pred) > 0.1


class TestPctConversion:
    def test_known_value(self):
        """0.0414 dex is very close to a 10 % relative error."""
        assert dex_to_pct(np.log10(1.10)) == pytest.approx(10.0)

    def test_roundtrip(self):
        for pct in (1.0, 5.71, 25.0, 100.0):
            assert dex_to_pct(pct_to_dex(pct)) == pytest.approx(pct)

    def test_negative_dex_is_underestimate(self):
        assert dex_to_pct(-0.1) < 0

    @given(st.floats(min_value=-0.5, max_value=0.5))
    def test_roundtrip_property(self, x):
        assert float(pct_to_dex(dex_to_pct(x))) == pytest.approx(x, abs=1e-9)


class TestMedianPct:
    def test_matches_manual(self):
        y = np.array([1.0, 1.0, 1.0, 1.0])
        pred = y + np.array([0.01, -0.02, 0.03, -0.04])
        manual = (10 ** np.median([0.01, 0.02, 0.03, 0.04]) - 1) * 100
        assert median_abs_pct_error(y, pred) == pytest.approx(manual)


class TestErrorPercentiles:
    def test_all_within_threshold(self):
        y = np.zeros(10)
        pred = y + 0.01  # ~2.3 % error everywhere
        shares = error_percentiles(y, pred)
        assert shares[">20%"] == 0.0

    def test_share_counts(self):
        y = np.zeros(4)
        pred = np.array([0.0, 0.0, 0.5, 0.5])  # two ~216 % misses
        shares = error_percentiles(y, pred)
        assert shares[">100%"] == pytest.approx(0.5)
        assert shares[">200%"] == pytest.approx(0.5)
        assert shares[">400%"] == 0.0
