"""Tests for the linear model family (ridge / lasso / elastic-net / paths)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.linear import (
    ElasticNetRegression,
    LassoRegression,
    RidgeRegression,
    lasso_path,
)


def _sparse_problem(n=300, d=12, k=3, seed=0, noise=0.05):
    """Linear signal through k of d features."""
    rng = np.random.default_rng(seed)
    X = rng.normal(0.0, 1.0, (n, d))
    beta = np.zeros(d)
    beta[:k] = np.array([2.0, -1.5, 1.0])[:k]
    y = X @ beta + 0.7 + rng.normal(0.0, noise, n)
    return X, y, beta


class TestElasticNet:
    def test_recovers_sparse_coefficients(self):
        X, y, beta = _sparse_problem()
        model = LassoRegression(alpha=0.01).fit(X, y)
        np.testing.assert_allclose(model.coef_[:3], beta[:3], atol=0.15)

    def test_lasso_zeroes_out_inactive_features(self):
        X, y, _ = _sparse_problem(n=500)
        model = LassoRegression(alpha=0.05).fit(X, y)
        assert model.n_nonzero_ <= 6
        assert np.all(model.coef_[:3] != 0.0)

    def test_zero_alpha_matches_ols_fit_quality(self):
        X, y, _ = _sparse_problem(noise=0.0)
        model = ElasticNetRegression(alpha=0.0, max_iter=2000, tol=1e-10).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-4)

    def test_stronger_alpha_shrinks_l1_norm(self):
        X, y, _ = _sparse_problem()
        weak = LassoRegression(alpha=0.01).fit(X, y)
        strong = LassoRegression(alpha=0.5).fit(X, y)
        assert np.abs(strong.coef_).sum() < np.abs(weak.coef_).sum()

    def test_huge_alpha_gives_intercept_only(self):
        X, y, _ = _sparse_problem()
        model = LassoRegression(alpha=100.0).fit(X, y)
        assert model.n_nonzero_ == 0
        np.testing.assert_allclose(model.predict(X), y.mean(), atol=1e-9)

    def test_elastic_net_mixes_penalties(self):
        X, y, _ = _sparse_problem(n=400)
        lasso = ElasticNetRegression(alpha=0.05, l1_ratio=1.0).fit(X, y)
        ridgey = ElasticNetRegression(alpha=0.05, l1_ratio=0.1).fit(X, y)
        # more L2 ⇒ fewer exact zeros
        assert ridgey.n_nonzero_ >= lasso.n_nonzero_

    def test_constant_column_is_ignored(self):
        X, y, _ = _sparse_problem()
        X = np.column_stack([X, np.full(X.shape[0], 7.0)])
        model = LassoRegression(alpha=0.01).fit(X, y)
        assert model.coef_[-1] == 0.0

    def test_matches_ridge_when_pure_l2(self):
        X, y, _ = _sparse_problem(noise=0.02)
        # same normalization of the penalty: ridge alpha = n * alpha_en (std-ized X)
        en = ElasticNetRegression(alpha=0.001, l1_ratio=0.0, max_iter=3000, tol=1e-12).fit(X, y)
        pred_en = en.predict(X)
        ridge = RidgeRegression(alpha=0.001 * X.shape[0]).fit(
            (X - X.mean(0)) / X.std(0), y
        )
        pred_ridge = ridge.predict((X - X.mean(0)) / X.std(0))
        np.testing.assert_allclose(pred_en, pred_ridge, atol=5e-3)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ElasticNetRegression(alpha=-1.0)
        with pytest.raises(ValueError):
            ElasticNetRegression(l1_ratio=1.5)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            ElasticNetRegression().predict(np.zeros((3, 2)))

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.001, 1.0), st.floats(0.0, 1.0))
    def test_converges_and_finite(self, alpha, l1_ratio):
        X, y, _ = _sparse_problem(n=120, seed=42)
        model = ElasticNetRegression(alpha=alpha, l1_ratio=l1_ratio).fit(X, y)
        assert np.all(np.isfinite(model.coef_))
        assert np.isfinite(model.intercept_)


class TestLassoPath:
    def test_path_shape_and_monotone_support(self):
        X, y, _ = _sparse_problem(n=400)
        alphas, coefs = lasso_path(X, y, n_alphas=12)
        assert coefs.shape == (12, X.shape[1])
        nnz = (coefs != 0.0).sum(axis=1)
        # support grows (weakly) as alpha decreases
        assert nnz[0] <= nnz[-1]
        assert nnz[0] == 0  # alpha_max zeroes everything

    def test_true_features_enter_first(self):
        X, y, _ = _sparse_problem(n=500, noise=0.02)
        _, coefs = lasso_path(X, y, n_alphas=25)
        first_entry = np.full(X.shape[1], np.inf)
        for j in range(X.shape[1]):
            nz = np.flatnonzero(coefs[:, j] != 0.0)
            if nz.size:
                first_entry[j] = nz[0]
        assert np.all(np.sort(first_entry[:3]) <= np.sort(first_entry[3:])[:3])

    def test_explicit_alphas_respected(self):
        X, y, _ = _sparse_problem()
        alphas = np.array([1.0, 0.1])
        got, coefs = lasso_path(X, y, alphas=alphas)
        np.testing.assert_array_equal(got, alphas)
        assert coefs.shape == (2, X.shape[1])
