"""Property tests for the ζg(t) weather process (I/O climate + weather)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SECONDS_PER_YEAR, WeatherConfig
from repro.simulator.weather import Weather

SPAN = 3.0 * SECONDS_PER_YEAR


def _weather(seed=0, **over):
    return Weather(WeatherConfig(**over), SPAN, seed)


class TestComponents:
    def test_degradations_only_hurt(self):
        w = _weather(seed=1)
        t = np.linspace(0.0, SPAN, 20_000)
        assert np.all(w.degradation(t) >= 0.0)  # depth, subtracted in log_factor
        assert np.all(w.log_factor(t) <= w.log_factor(t) + w.degradation(t))

    def test_fullness_is_a_fraction(self):
        w = _weather(seed=2)
        t = np.linspace(0.0, SPAN, 10_000)
        f = w.fullness(t)
        assert np.all((0.0 <= f) & (f <= 1.0))

    def test_fullness_sawtooth_purges(self):
        """Fullness must drop at purge boundaries, not grow without bound."""
        w = _weather(seed=3)
        t = np.linspace(0.0, SPAN, 50_000)
        f = w.fullness(t)
        drops = np.diff(f) < -0.02
        assert drops.any()

    def test_epoch_offsets_piecewise_constant(self):
        w = _weather(seed=4)
        t = np.linspace(0.0, SPAN, 5_000)
        off = w.epoch_offset(t)
        # limited number of distinct values = epochs (+ deployment epoch)
        assert np.unique(off).size <= w.config.epoch_count + 1

    def test_seasonal_amplitude_bounded(self):
        # seasonal() bundles the annual cycle with the slow aging drift
        cfg_amp = 0.02
        w = _weather(seed=5, seasonal_amplitude=cfg_amp)
        t = np.linspace(0.0, SPAN, 10_000)
        years = SPAN / SECONDS_PER_YEAR
        bound = cfg_amp + abs(w.config.aging_slope) * years
        assert np.abs(w.seasonal(t)).max() <= bound + 1e-12

    def test_ou_wander_scale(self):
        w = _weather(seed=6, ou_sigma=0.05)
        t = np.linspace(0.0, SPAN, 20_000)
        sd = np.std(w.ou(t))
        assert 0.01 < sd < 0.12  # order of the configured sigma


class TestRealization:
    def test_deterministic_given_seed(self):
        t = np.linspace(0.0, SPAN, 1_000)
        np.testing.assert_array_equal(
            _weather(seed=7).log_factor(t), _weather(seed=7).log_factor(t)
        )

    def test_seed_changes_realization(self):
        t = np.linspace(0.0, SPAN, 1_000)
        assert not np.allclose(_weather(seed=8).log_factor(t), _weather(seed=9).log_factor(t))

    def test_log_factor_has_plausible_scale(self):
        """ζg stays within tens of percent — weather, not catastrophe."""
        w = _weather(seed=10)
        t = np.linspace(0.0, SPAN, 30_000)
        lf = w.log_factor(t)
        assert np.abs(np.mean(lf)) < 0.1
        assert np.abs(lf).max() < 0.8

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_finite_everywhere(self, seed):
        w = _weather(seed=seed)
        t = np.linspace(0.0, SPAN, 2_000)
        assert np.all(np.isfinite(w.log_factor(t)))

    def test_deployment_epoch_shift_exists(self):
        """The guaranteed post-cutoff epoch must move the mean level (Fig 1d)."""
        w = Weather(WeatherConfig(), SPAN, 11, deployment_epoch_at=0.85)
        t_pre = np.linspace(0.70 * SPAN, 0.84 * SPAN, 4_000)
        t_post = np.linspace(0.86 * SPAN, 0.99 * SPAN, 4_000)
        gap = abs(np.mean(w.epoch_offset(t_post)) - np.mean(w.epoch_offset(t_pre)))
        assert gap > 0.5 * WeatherConfig().epoch_sigma

    def test_describe_reports_event_count(self):
        w = _weather(seed=12)
        info = w.describe()
        assert "n_degradations" in info or len(info) > 0
