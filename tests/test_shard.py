"""Tests for the process-sharded serving cluster.

The cluster's contract mirrors the rest of the serve stack: process
sharding is routing and plumbing, never arithmetic.  Every answer must be
bit-identical (``np.array_equal``) to a direct single-process predict on
the same registered model, registry mutations must hold cluster-wide the
moment the mutating call returns, and a dead worker must surface as
per-ticket errors — never a hung client.
"""

import json
import pickle
import time

import numpy as np
import pytest

from repro.cli import main
from repro.ml.forest import RandomForestRegressor
from repro.ml.gbm import GradientBoostingRegressor
from repro.serve import (
    ClusterStats,
    ModelRegistry,
    ServingGateway,
    ShardCrashedError,
    ShardedServingCluster,
)
from repro.serve.shard import shard_for_name

pytestmark = [pytest.mark.serve, pytest.mark.shard]


def _data(n=600, d=6, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n, d))
    y = np.sin(2 * X[:, 0]) + X[:, 1] * X[:, 2] + 0.05 * rng.normal(0, 1, n)
    return X, y


@pytest.fixture(scope="module")
def data():
    return _data()


@pytest.fixture(scope="module")
def forest(data):
    X, y = data
    return RandomForestRegressor(n_estimators=20, max_depth=8, random_state=1).fit(X, y)


@pytest.fixture(scope="module")
def gbm(data):
    X, y = data
    return GradientBoostingRegressor(n_estimators=20, max_depth=3, loss="squared").fit(X, y)


def _registry(forest, gbm):
    reg = ModelRegistry()
    reg.register("forest", forest, promote=True)
    reg.register("gbm", gbm, promote=True)
    return reg


def _cluster(reg, **kw):
    kw.setdefault("n_shards", 2)
    kw.setdefault("max_batch", 16)
    kw.setdefault("max_delay", 0.01)
    return ShardedServingCluster(reg, **kw)


# ---------------------------------------------------------------------- #
class TestRouting:
    def test_name_hash_is_stable_and_in_range(self):
        for name in ("forest", "gbm", "io-throughput", "a", ""):
            for n in (1, 2, 3, 7):
                idx = shard_for_name(name, n)
                assert 0 <= idx < n
                assert idx == shard_for_name(name, n)  # process-independent

    def test_hash_route_pins_a_name_to_one_shard(self, forest, gbm):
        reg = _registry(forest, gbm)
        with _cluster(reg) as cluster:
            owner = cluster.shard_of("forest")
            tickets = [cluster.submit("forest", _data(n=10, seed=3)[0][i]) for i in range(10)]
            cluster.flush()
            for t in tickets:
                t.result(timeout=20.0)
                assert t.shard_id == owner


class TestBitIdentity:
    def test_two_shard_two_name_stream_matches_single_process_gateway(
        self, forest, gbm
    ):
        """The acceptance gate: a 2-shard cluster serving 2 names returns
        predictions np.array_equal to a single-process ServingGateway."""
        reg = _registry(forest, gbm)
        rows = _data(n=120, seed=7)[0]
        names = ["forest" if i % 3 else "gbm" for i in range(len(rows))]

        with ServingGateway(reg, max_batch=16, max_delay=0.01) as gw:
            tickets = [(n, gw.submit(n, r)) for n, r in zip(names, rows)]
            gw.flush()
            single = {"forest": [], "gbm": []}
            for n, t in tickets:
                single[n].append(t.result(timeout=20.0))

        with _cluster(reg) as cluster:
            tickets = [(n, cluster.submit(n, r)) for n, r in zip(names, rows)]
            cluster.flush()
            sharded = {"forest": [], "gbm": []}
            for n, t in tickets:
                sharded[n].append(t.result(timeout=20.0))

        for name in ("forest", "gbm"):
            assert np.array_equal(np.array(sharded[name]), np.array(single[name]))

    def test_predict_dist_routes_through_shards(self, forest, gbm):
        reg = _registry(forest, gbm)
        rows = _data(n=8, seed=11)[0]
        with _cluster(reg) as cluster:
            got = [cluster.predict_dist("forest", r, timeout=20.0) for r in rows]
        for r, (m, v) in zip(rows, got):
            mr, vr = forest.predict_dist(r[None, :])
            assert m == mr[0] and v == vr[0]

    def test_replicated_block_fanout_bit_identical(self, forest, gbm):
        reg = _registry(forest, gbm)
        X = _data(n=97, seed=13)[0]  # odd count: uneven chunks must reassemble
        with _cluster(reg, route="replicated", max_batch=64) as cluster:
            got = cluster.predict_block("forest", X, timeout=20.0)
            assert np.array_equal(got, forest.predict(X))
            m, v = cluster.submit_block("forest", X, kind="predict_dist").result(20.0)
            mr, vr = forest.predict_dist(X)
            assert np.array_equal(m, mr) and np.array_equal(v, vr)

    def test_replicated_single_rows_bit_identical(self, forest, gbm):
        reg = _registry(forest, gbm)
        rows = _data(n=40, seed=17)[0]
        with _cluster(reg, route="replicated") as cluster:
            tickets = [cluster.submit("gbm", r) for r in rows]
            cluster.flush()
            got = np.array([t.result(timeout=20.0) for t in tickets])
            shards_used = {t.shard_id for t in tickets}
        assert np.array_equal(got, gbm.predict(rows))
        assert len(shards_used) == 2  # round-robin actually spread the load


# ---------------------------------------------------------------------- #
class TestBroadcastMutations:
    def test_register_promote_rollback_unregister_hold_cluster_wide(
        self, data, forest, gbm
    ):
        X, y = data
        reg = _registry(forest, gbm)
        probe = _data(n=3, seed=19)[0]
        v2_model = RandomForestRegressor(n_estimators=20, max_depth=8, random_state=9).fit(X, y)
        with _cluster(reg) as cluster:
            assert cluster.predict("forest", probe[0], timeout=20.0) == \
                forest.predict(probe[0][None, :])[0]

            v2 = cluster.register("forest", v2_model, promote=True)
            assert reg.production_version("forest") == v2
            # distinct probe rows per stage: results must come from the
            # broadcast-promoted replica, not a stale worker cache
            assert cluster.predict("forest", probe[1], timeout=20.0) == \
                v2_model.predict(probe[1][None, :])[0]

            cluster.rollback("forest")
            assert cluster.predict("forest", probe[2], timeout=20.0) == \
                forest.predict(probe[2][None, :])[0]

            cluster.unregister("forest", v2)
            assert reg.versions("forest") == [1]
            # the replicas dropped it too: re-registering reuses v2's slot
            v3 = cluster.register("forest", v2_model)
            assert v3 == v2 + 1

    def test_control_replay_is_idempotent(self, data, forest, gbm):
        """A worker respawned between a parent mutation and its broadcast
        warm-starts from a snapshot that already holds the change, then
        receives the queued broadcast anyway — replaying every action on
        an already-consistent replica must be a no-op, not a divergence."""
        from repro.serve.shard import _apply_control

        X, y = data
        reg = _registry(forest, gbm)
        v2_model = RandomForestRegressor(n_estimators=20, max_depth=8, random_state=3).fit(X, y)
        v2 = reg.register("forest", v2_model, promote=True)
        reg.rollback("forest")

        replica = ModelRegistry()
        replica.restore(reg.snapshot())  # snapshot already carries everything
        payload = (pickle.dumps(reg.get("forest", v2)), v2)
        assert _apply_control(replica, "register", "forest", payload) == v2
        assert replica.versions("forest") == [1, v2]
        # replayed rollback: production already at the target, history intact
        assert _apply_control(replica, "rollback", "forest", 1) == 1
        assert replica.production_version("forest") == 1
        _apply_control(replica, "promote", "forest", 1)  # no history push
        reg.unregister("forest", v2)
        replica.unregister("forest", v2)
        assert _apply_control(replica, "unregister", "forest", v2) == v2
        assert replica.versions("forest") == [1]

    def test_mutations_through_registry_directly_also_broadcast(self, data, forest, gbm):
        X, y = data
        reg = _registry(forest, gbm)
        v2_model = RandomForestRegressor(n_estimators=20, max_depth=8, random_state=5).fit(X, y)
        probe = _data(n=2, seed=23)[0]
        with _cluster(reg) as cluster:
            v2 = cluster.register("gbm", v2_model)  # register must ship bytes
            reg.promote("gbm", v2)  # listener broadcast
            assert cluster.predict("gbm", probe[0], timeout=20.0) == \
                v2_model.predict(probe[0][None, :])[0]
            reg.rollback("gbm")
            assert cluster.predict("gbm", probe[1], timeout=20.0) == \
                gbm.predict(probe[1][None, :])[0]


# ---------------------------------------------------------------------- #
class TestCrashContainment:
    def test_worker_kill_fails_tickets_and_respawn_recovers(self, forest, gbm):
        """The acceptance gate: a killed worker yields per-ticket errors
        (no hang) and respawn() restores bit-identical service."""
        reg = _registry(forest, gbm)
        rows = _data(n=6, seed=29)[0]
        with _cluster(reg, max_batch=512, max_delay=30.0) as cluster:
            victim = cluster.shard_of("forest")
            # park requests on the victim: huge limits keep them pending
            in_flight = [cluster.submit("forest", r) for r in rows[:3]]
            cluster.kill_shard(victim)
            for t in in_flight:
                with pytest.raises(ShardCrashedError):
                    t.result(timeout=10.0)
            # post-crash submits error immediately instead of hanging
            with pytest.raises(ShardCrashedError):
                cluster.submit("forest", rows[3]).result(timeout=10.0)
            assert cluster.live_shards() != list(range(cluster.n_shards))

            assert cluster.respawn() == 1
            assert cluster.live_shards() == list(range(cluster.n_shards))
            ticket = cluster.submit("forest", rows[4])
            cluster.flush()  # the huge test limits never self-flush
            assert ticket.result(timeout=20.0) == forest.predict(rows[4][None, :])[0]

    def test_respawned_worker_carries_mutations_made_while_down(
        self, data, forest, gbm
    ):
        X, y = data
        reg = _registry(forest, gbm)
        v2_model = RandomForestRegressor(n_estimators=20, max_depth=8, random_state=7).fit(X, y)
        probe = _data(n=1, seed=31)[0][0]
        with _cluster(reg) as cluster:
            cluster.kill_shard(cluster.shard_of("forest"))
            v2 = cluster.register("forest", v2_model, promote=True)  # owner is down
            cluster.respawn()  # warm-starts from the *current* snapshot
            assert cluster.predict("forest", probe, timeout=20.0) == \
                v2_model.predict(probe[None, :])[0]
            assert reg.production_version("forest") == v2


# ---------------------------------------------------------------------- #
class TestStatsAndLifecycle:
    def test_cluster_stats_aggregate_per_shard_and_per_name(self, forest, gbm):
        reg = _registry(forest, gbm)
        rows = _data(n=30, seed=37)[0]
        with _cluster(reg) as cluster:
            for i, r in enumerate(rows):
                cluster.predict("forest" if i % 2 else "gbm", r, timeout=20.0)
            # a result() return races the flusher's counter bump by a few
            # microseconds — poll until the last flush finishes accounting
            for _ in range(100):
                stats = cluster.stats()
                if stats.total.completed == len(rows):
                    break
                time.sleep(0.01)
        assert isinstance(stats, ClusterStats)
        assert set(stats.per_shard) == {0, 1}
        per_name = stats.per_name
        assert per_name["forest"].requests == 15
        assert per_name["gbm"].requests == 15
        assert stats.total.requests == 30
        assert stats.total.completed == 30
        # per-shard totals sum to the cluster total, field by field
        assert sum(gw.total.requests for gw in stats.per_shard.values()) == 30

    def test_close_is_idempotent_and_del_safe(self, forest, gbm):
        reg = _registry(forest, gbm)
        cluster = _cluster(reg)
        assert cluster.predict("forest", _data(n=1, seed=41)[0][0], timeout=20.0)
        cluster.close()
        cluster.close()  # second close is a no-op
        cluster.__del__()  # and the finalizer path never raises
        with pytest.raises((RuntimeError, ShardCrashedError)):
            cluster.submit("forest", _data(n=1, seed=41)[0][0]).result(timeout=5.0)
        # a listener left behind would re-broadcast into closed pipes:
        # a real stage change on the registry must not raise after close
        v2 = reg.register("forest", gbm)
        reg.promote("forest", v2)

    def test_snapshot_roundtrips_through_pickle(self, forest, gbm):
        reg = _registry(forest, gbm)
        snap = pickle.loads(pickle.dumps(reg.snapshot()))
        replica = ModelRegistry()
        replica.restore(snap)
        assert replica.names() == reg.names()
        row = _data(n=1, seed=43)[0]
        assert replica.get("forest").predict(row) == forest.predict(row)
        assert replica.production_version("forest") == reg.production_version("forest")

    def test_bad_requests_stay_per_ticket(self, forest, gbm):
        reg = _registry(forest, gbm)
        with _cluster(reg) as cluster:
            bad = cluster.submit("forest", np.ones(3))  # wrong width
            unknown = cluster.submit("nope", np.ones(6))
            good = cluster.submit("forest", _data(n=1, seed=47)[0][0])
            cluster.flush()
            with pytest.raises(Exception):
                bad.result(timeout=20.0)
            with pytest.raises(LookupError):
                unknown.result(timeout=20.0)
            assert good.result(timeout=20.0) == pytest.approx(
                forest.predict(_data(n=1, seed=47)[0])[0]
            )
            # the cluster survives its clients
            assert cluster.live_shards() == [0, 1]


# ---------------------------------------------------------------------- #
class TestCLI:
    def test_serve_bench_shards_records_cluster_entry(self, tmp_path, monkeypatch):
        """The acceptance gate: repro serve-bench --shards 2 lands a
        cluster entry in benchmarks/results/BENCH_serve.json."""
        monkeypatch.chdir(tmp_path)
        rc = main([
            "serve-bench", "--shards", "2", "--train", "400", "--trees", "10",
            "--requests", "120", "--batch", "32",
        ])
        assert rc == 0
        trajectory = json.loads(
            (tmp_path / "benchmarks" / "results" / "BENCH_serve.json").read_text()
        )
        assert len(trajectory) == 1
        entry = trajectory[0]["cluster"]
        assert entry["n_shards"] == 2
        assert entry["n_requests"] == 120
        assert "speedup_cluster" in entry and "speedup_block" in entry


# ---------------------------------------------------------------------- #
class TestStormBugRegressions:
    """The two storm-scale bugs the chaos harness flushed out."""

    @staticmethod
    def _stub_cluster(n_shards: int, request_timeout: float) -> ShardedServingCluster:
        """A parent-side cluster shell with fake live shards and a
        _send_request that hands back tickets nobody will ever complete —
        the wedged-fleet worst case a kill storm produces, without
        spawning a single process."""
        from types import SimpleNamespace

        from repro.serve.shard import ClusterTicket

        cluster = object.__new__(ShardedServingCluster)
        cluster.request_timeout = request_timeout
        cluster._closed = False
        cluster._tap_errors = 0
        cluster._steals = 0
        cluster._shards = [
            SimpleNamespace(shard_id=i, alive=True) for i in range(n_shards)
        ]
        cluster._send_request = lambda handle, op, *args: ClusterTicket(handle.shard_id)
        return cluster

    def test_gather_shares_one_deadline_across_fanout(self):
        """A fan-out over n wedged shards must cost ~one request_timeout,
        not n of them, and must degrade (skip the wedged shards) instead
        of raising the first ticket's timeout at the caller."""
        from repro.serve.shard import ClusterTicket

        cluster = self._stub_cluster(n_shards=4, request_timeout=0.3)
        tickets = [ClusterTicket(i) for i in range(4)]
        start = time.monotonic()
        values = cluster._gather(tickets)
        elapsed = time.monotonic() - start
        assert values == []
        assert elapsed < 2 * 0.3, (
            f"fan-out gather took {elapsed:.2f}s — per-ticket timeouts "
            f"instead of one shared deadline"
        )

    def test_stats_shares_one_deadline_across_shards(self):
        """stats() over wedged shards: same shared-deadline contract, and
        the wedged shards are simply absent from the roll-up."""
        cluster = self._stub_cluster(n_shards=4, request_timeout=0.3)
        start = time.monotonic()
        stats = cluster.stats()
        elapsed = time.monotonic() - start
        assert isinstance(stats, ClusterStats)
        assert stats.per_shard == {}
        assert elapsed < 2 * 0.3, (
            f"stats() took {elapsed:.2f}s — per-ticket timeouts "
            f"instead of one shared deadline"
        )

    def test_respawn_wave_serializes_snapshot_once(self, forest, gbm):
        """A K-shard respawn wave must pickle the registry snapshot once,
        not once per dead worker — O(models) work, not O(models × deaths)."""
        reg = _registry(forest, gbm)
        with _cluster(reg, n_shards=3) as cluster:
            # move the registry past the __init__-time snapshot so the wave
            # genuinely needs one fresh serialization (workers are all dead
            # below, so the respawned fleet stays consistent)
            reg.register("extra", gbm)
            for sid in range(3):
                cluster.kill_shard(sid)
            deadline = time.monotonic() + 10.0
            while cluster.live_shards() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert cluster.live_shards() == []

            calls = {"n": 0}
            orig = reg.snapshot

            def counting_snapshot():
                calls["n"] += 1
                return orig()

            reg.snapshot = counting_snapshot
            try:
                assert cluster.respawn() == 3
            finally:
                del reg.snapshot
            assert calls["n"] == 1, (
                f"respawn wave serialized the snapshot {calls['n']} times "
                f"for 3 dead shards"
            )
            assert sorted(cluster.live_shards()) == [0, 1, 2]
