"""Tests for dataset assembly, feature sets, splits, and duplicate detection."""

import numpy as np
import pytest

from repro.config import cori_config, theta_config
from repro.data import (
    Dataset,
    build_dataset,
    concurrent_subsets,
    duplicate_pairs,
    feature_matrix,
    find_duplicate_sets,
    random_split,
    temporal_split,
    train_val_test_split,
)
from repro.data.features import derived_posix_features
from repro.telemetry.schema import POSIX_FEATURES


@pytest.fixture(scope="module")
def theta_ds():
    return build_dataset(theta_config(n_jobs=3000))


@pytest.fixture(scope="module")
def cori_ds():
    return build_dataset(cori_config(n_jobs=3000))


class TestBuildDataset:
    def test_sources_per_platform(self, theta_ds, cori_ds):
        assert set(theta_ds.sources) == {"posix", "mpiio", "cobalt"}
        assert set(cori_ds.sources) == {"posix", "mpiio", "lmt"}

    def test_target_is_log_throughput(self, theta_ds):
        assert np.all(np.isfinite(theta_ds.y))
        assert 0.0 < np.median(theta_ds.y) < 7.0  # MiB/s between 1 and 10^7

    def test_meta_ground_truth_present(self, theta_ds):
        assert {"variant_id", "is_ood", "fa_dex", "fg_dex", "fl_dex", "fn_dex"} <= set(theta_ds.meta)

    def test_subset(self, theta_ds):
        sub = theta_ds.subset(np.arange(100))
        assert len(sub) == 100
        assert sub.frames["posix"].shape[0] == 100

    def test_save_load_roundtrip(self, theta_ds, tmp_path):
        path = tmp_path / "ds.npz"
        theta_ds.save(path)
        loaded = Dataset.load(path)
        assert loaded.name == theta_ds.name
        np.testing.assert_array_equal(loaded.y, theta_ds.y)
        np.testing.assert_array_equal(loaded.frames["posix"], theta_ds.frames["posix"])
        np.testing.assert_array_equal(loaded.meta["variant_id"], theta_ds.meta["variant_id"])

    def test_frame_shape_validation(self):
        with pytest.raises(ValueError, match="frame"):
            Dataset(
                name="x",
                frames={"posix": np.zeros((5, 3))},
                y=np.zeros(5),
                start_time=np.zeros(5),
                end_time=np.ones(5),
            )


class TestFeatureMatrix:
    def test_posix_with_derived(self, theta_ds):
        X, names = feature_matrix(theta_ds, "posix")
        assert X.shape[1] == len(names) > 48
        assert any(n.startswith("DRV_") for n in names)

    def test_posix_raw_only(self, theta_ds):
        X, names = feature_matrix(theta_ds, "posix", include_derived=False)
        assert X.shape[1] == 48

    def test_time_feature_appended(self, theta_ds):
        X, names = feature_matrix(theta_ds, "posix+time")
        assert names[-1] == "JOB_START_TIME"
        np.testing.assert_array_equal(X[:, -1], theta_ds.start_time)

    def test_lmt_on_theta_raises(self, theta_ds):
        with pytest.raises(ValueError, match="does not collect"):
            feature_matrix(theta_ds, "posix+lmt")

    def test_cobalt_on_cori_raises(self, cori_ds):
        with pytest.raises(ValueError, match="does not collect"):
            feature_matrix(cori_ds, "posix+cobalt")

    def test_unknown_set_raises(self, theta_ds):
        with pytest.raises(KeyError, match="unknown feature set"):
            feature_matrix(theta_ds, "posix+magic")

    def test_derived_ratios_recover_latents(self, theta_ds):
        """DRV_SEQ_READ_PCT must track the latent sequential fraction."""
        drv, names = derived_posix_features(theta_ds.frames["posix"])
        seq = drv[:, names.index("DRV_SEQ_READ_PCT")]
        assert np.all((seq >= 0) & (seq <= 1.0 + 1e-9))

    def test_derived_read_frac_matches_meta(self, theta_ds):
        drv, names = derived_posix_features(theta_ds.frames["posix"])
        rf = drv[:, names.index("DRV_READ_BYTE_FRAC")]
        br = theta_ds.frames["posix"][:, POSIX_FEATURES.index("POSIX_BYTES_READ")]
        bw = theta_ds.frames["posix"][:, POSIX_FEATURES.index("POSIX_BYTES_WRITTEN")]
        np.testing.assert_allclose(rf, br / np.maximum(br + bw, 1.0), rtol=1e-9)


class TestSplits:
    def test_random_split_partition(self):
        train, test = random_split(100, 0.2, rng=0)
        assert np.intersect1d(train, test).size == 0
        assert train.size + test.size == 100

    def test_random_split_frac(self):
        _, test = random_split(1000, 0.25, rng=0)
        assert test.size == 250

    def test_random_split_bad_frac_raises(self):
        with pytest.raises(ValueError):
            random_split(10, 1.5)

    def test_train_val_test_partition(self):
        tr, va, te = train_val_test_split(200, 0.15, 0.2, rng=1)
        assert tr.size + va.size + te.size == 200
        assert np.intersect1d(tr, va).size == 0
        assert np.intersect1d(tr, te).size == 0

    def test_train_val_test_bad_fracs(self):
        with pytest.raises(ValueError):
            train_val_test_split(100, 0.6, 0.6)

    def test_temporal_split_ordering(self):
        t = np.linspace(0, 100, 50)
        train, deploy = temporal_split(t, cutoff_frac=0.8)
        assert t[train].max() < t[deploy].min()

    def test_temporal_split_explicit_cutoff(self):
        t = np.arange(10.0)
        train, deploy = temporal_split(t, cutoff=5.0)
        assert train.size == 5 and deploy.size == 5

    def test_temporal_split_empty_side_raises(self):
        with pytest.raises(ValueError):
            temporal_split(np.arange(10.0), cutoff=100.0)


class TestDuplicates:
    def test_hand_built_groups(self):
        X = np.array([[1, 2], [3, 4], [1, 2], [5, 6], [1, 2], [3, 4]])
        dups = find_duplicate_sets(X)
        assert dups.n_sets == 2
        assert dups.n_duplicates == 5
        sizes = sorted(dups.set_sizes().tolist())
        assert sizes == [2, 3]
        assert dups.set_id[3] == -1  # singleton

    def test_fraction(self):
        X = np.array([[1.0], [1.0], [2.0], [3.0]])
        dups = find_duplicate_sets(X)
        assert dups.fraction_of(4) == pytest.approx(0.5)

    def test_matches_ground_truth_variants(self, theta_ds):
        """Feature-based detection must recover the simulator's variants."""
        dups = find_duplicate_sets(theta_ds.frames["posix"])
        counts = np.bincount(theta_ds.meta["variant_id"])
        true_dup = counts[counts >= 2].sum()
        assert dups.n_duplicates == true_dup

    def test_cobalt_destroys_duplicates(self, theta_ds):
        """Realized timestamps make every row unique (§VI.C)."""
        X, _ = feature_matrix(theta_ds, "posix+cobalt", include_derived=False)
        dups = find_duplicate_sets(X)
        assert dups.n_sets == 0

    def test_concurrent_subsets_window(self):
        X = np.ones((4, 2))
        dups = find_duplicate_sets(X)
        t = np.array([0.0, 0.5, 100.0, 100.2])
        subsets = concurrent_subsets(dups, t, window=1.0)
        assert len(subsets) == 2
        assert all(len(s) == 2 for s in subsets)

    def test_duplicate_pairs_weights(self):
        X = np.ones((3, 1))
        dups = find_duplicate_sets(X)
        dt, dv, w = duplicate_pairs(dups, np.array([0.0, 1.0, 2.0]), np.array([1.0, 2.0, 3.0]))
        assert dt.size == 3  # 3 choose 2
        np.testing.assert_allclose(w, 1.0 / 3.0)

    def test_duplicate_pairs_subsample_large_sets(self):
        X = np.ones((300, 1))
        dups = find_duplicate_sets(X)
        rng = np.random.default_rng(0)
        dt, dv, w = duplicate_pairs(dups, np.arange(300.0), np.zeros(300),
                                    max_pairs_per_set=100, rng=rng)
        assert dt.size <= 100

    def test_no_duplicates_empty_pairs(self):
        X = np.arange(6.0).reshape(3, 2)
        dups = find_duplicate_sets(X)
        dt, dv, w = duplicate_pairs(dups, np.zeros(3), np.zeros(3))
        assert dt.size == 0

    def test_cori_has_more_duplicates(self, theta_ds, cori_ds):
        """Paper: Cori 54 % vs Theta 23.5 %."""
        d_t = find_duplicate_sets(theta_ds.frames["posix"]).fraction_of(len(theta_ds))
        d_c = find_duplicate_sets(cori_ds.frames["posix"]).fraction_of(len(cori_ds))
        assert d_c > d_t + 0.15
