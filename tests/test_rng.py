"""Tests for deterministic RNG management."""

import numpy as np
import pytest

from repro.rng import RngFactory, generator_from, spawn_generators


class TestGeneratorFrom:
    def test_int_seed_reproducible(self):
        a = generator_from(42).random(5)
        b = generator_from(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.allclose(generator_from(1).random(5), generator_from(2).random(5))

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert generator_from(gen) is gen

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(7)
        a = generator_from(ss).random(3)
        b = generator_from(np.random.SeedSequence(7)).random(3)
        np.testing.assert_array_equal(a, b)


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5

    def test_streams_independent(self):
        g1, g2 = spawn_generators(0, 2)
        assert not np.allclose(g1.random(10), g2.random(10))

    def test_reproducible(self):
        a = [g.random(3) for g in spawn_generators(3, 2)]
        b = [g.random(3) for g in spawn_generators(3, 2)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)


class TestRngFactory:
    def test_named_stream_reproducible(self):
        f = RngFactory(123)
        a = f.get("weather").random(4)
        b = RngFactory(123).get("weather").random(4)
        np.testing.assert_array_equal(a, b)

    def test_names_isolated(self):
        f = RngFactory(123)
        assert not np.allclose(f.get("weather").random(4), f.get("noise").random(4))

    def test_order_independence(self):
        """Drawing from one stream must not perturb another."""
        f1 = RngFactory(9)
        _ = f1.get("a").random(100)
        after = f1.get("b").random(4)
        fresh = RngFactory(9).get("b").random(4)
        np.testing.assert_array_equal(after, fresh)

    def test_child_streams_differ_by_index(self):
        f = RngFactory(5)
        assert not np.allclose(f.child("m", 0).random(4), f.child("m", 1).random(4))

    def test_streams_iterator(self):
        f = RngFactory(5)
        gens = list(f.streams("x", "y"))
        assert len(gens) == 2

    def test_seed_property(self):
        assert RngFactory(77).seed == 77

    def test_different_root_seeds_differ(self):
        a = RngFactory(1).get("s").random(4)
        b = RngFactory(2).get("s").random(4)
        assert not np.allclose(a, b)
