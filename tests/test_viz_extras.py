"""Tests for the segment-bar renderer (Fig. 7 text-mode pie)."""

import numpy as np
import pytest

from repro.viz import ascii_segment_bar


class TestSegmentBar:
    def test_labels_and_values_present(self):
        out = ascii_segment_bar({"application": 26.9, "aleatory": 21.3})
        assert "application" in out
        assert "26.9%" in out
        assert "21.3%" in out

    def test_unexplained_remainder_shown(self):
        out = ascii_segment_bar({"a": 30.0, "b": 20.0})
        assert "unexplained" in out
        assert "50.0%" in out

    def test_no_remainder_when_full(self):
        out = ascii_segment_bar({"a": 60.0, "b": 40.0})
        assert "unexplained" not in out

    def test_bar_width_respected(self):
        out = ascii_segment_bar({"a": 100.0}, width=30)
        bar_line = [l for l in out.splitlines() if l.strip().startswith("[")][0]
        assert len(bar_line.strip()) == 32  # 30 cells + brackets

    def test_negative_values_clipped(self):
        out = ascii_segment_bar({"a": -5.0, "b": 50.0})
        assert "  0.0%" in out

    def test_oversubscribed_normalizes(self):
        out = ascii_segment_bar({"a": 80.0, "b": 80.0}, width=40)
        bar_line = [l for l in out.splitlines() if l.strip().startswith("[")][0]
        assert len(bar_line.strip()) == 42

    def test_title_prepended(self):
        out = ascii_segment_bar({"a": 10.0}, title="Theta")
        assert out.splitlines()[0] == "Theta"
