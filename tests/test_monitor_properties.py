"""Property suite for the windowed drift scorer + monitoring soak test.

The stream profile runs unattended against whatever feature stream a
deployment produces, so its invariants must hold for *arbitrary* row
sequences, not just friendly ones:

* windowed PSI is non-negative for any reference/window pair (each
  epsilon-floored term ``(q - p)·ln(q/p)`` has matching signs),
* a window that replays the reference exactly scores PSI == 0 on every
  feature — including constant features (the degenerate-binning
  regression of PR 5),
* the ring buffer clamps at its capacity and keeps exactly the most
  recent rows in arrival order, whatever mix of single rows and blocks
  arrives,
* the whole pipeline — windowed scores, policy decisions, event log — is
  a pure function of the observed sequence under an injected clock.

The closing soak drives a *monitored* gateway under threaded traffic and
promote/rollback churn and asserts the serve layer's load-bearing
invariant end to end: the monitor is observational, so every answer is
bit-identical to an unmonitored gateway's.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.forest import RandomForestRegressor
from repro.serve import (
    ModelRegistry,
    MonitoringPlane,
    PsiThresholdRule,
    ServingGateway,
    StreamProfile,
)
from repro.stats.drift import ReferenceBinning, population_stability_index

pytestmark = [pytest.mark.serve, pytest.mark.monitor]


# ---------------------------------------------------------------------- #
# strategies
# ---------------------------------------------------------------------- #
finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False, width=32)


@st.composite
def reference_and_window(draw):
    d = draw(st.integers(1, 4))
    n_ref = draw(st.integers(10, 40))
    n_cur = draw(st.integers(1, 40))
    ref = draw(
        st.lists(st.lists(finite, min_size=d, max_size=d),
                 min_size=n_ref, max_size=n_ref)
    )
    cur = draw(
        st.lists(st.lists(finite, min_size=d, max_size=d),
                 min_size=n_cur, max_size=n_cur)
    )
    return np.array(ref, dtype=float), np.array(cur, dtype=float)


# ---------------------------------------------------------------------- #
# PSI properties
# ---------------------------------------------------------------------- #
class TestWindowedPsiProperties:
    @given(reference_and_window())
    @settings(max_examples=60, deadline=None)
    def test_psi_non_negative(self, data):
        ref, cur = data
        psi = ReferenceBinning(ref).psi(cur)
        assert np.all(psi >= 0.0)

    @given(reference_and_window())
    @settings(max_examples=60, deadline=None)
    def test_online_matches_offline_scorer(self, data):
        ref, cur = data
        online = ReferenceBinning(ref).psi(cur)
        offline = np.array([
            population_stability_index(ref[:, j], cur[:, j])
            for j in range(ref.shape[1])
        ])
        assert np.array_equal(online, offline)

    @given(st.integers(10, 60), st.integers(1, 4),
           st.floats(-1e3, 1e3, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_identical_window_psi_zero_even_with_constant_column(
        self, n, d, const
    ):
        rng = np.random.default_rng(n * 7 + d)
        ref = rng.normal(0, 1, (n, d))
        ref[:, 0] = const  # degenerate column: every decile edge collapses
        prof = StreamProfile(ref, window=n, min_window=1)
        prof.observe(ref)
        report = prof.drift(ks=True)
        assert np.all(report.psi == 0.0)
        assert np.all(report.ks == 0.0)

    @given(st.floats(-1e3, 1e3, allow_nan=False), st.integers(10, 50))
    @settings(max_examples=40, deadline=None)
    def test_constant_reference_tolerates_float_jitter(self, const, n):
        # the PR 5 degenerate-binning regression, property form: float
        # noise around a constant reference is NOT drift
        ref = np.full(n, const)
        jittered = ref + 1e-12 * np.abs(const if const else 1.0)
        assert population_stability_index(ref, jittered) < 0.1


# ---------------------------------------------------------------------- #
# ring-window properties
# ---------------------------------------------------------------------- #
class TestWindowClampProperties:
    @given(
        st.integers(1, 32),                          # window capacity
        st.lists(st.integers(1, 7), min_size=1, max_size=30),  # block sizes
    )
    @settings(max_examples=60, deadline=None)
    def test_window_is_exactly_the_most_recent_rows(self, window, blocks):
        d = 3
        ref = np.arange(30.0)[:, None] * np.ones(d)
        prof = StreamProfile(ref, window=window, min_window=1)
        sent: list[np.ndarray] = []
        counter = 0
        for m in blocks:
            block = np.full((m, d), 0.0) + np.arange(counter, counter + m)[:, None]
            counter += m
            sent.append(block)
            prof.observe(block if m > 1 else block[0])
        all_rows = np.vstack(sent)
        expect = all_rows[-window:]
        assert prof.n_observed == counter
        assert prof.window_fill == min(counter, window)
        assert np.array_equal(prof.window(), expect)


# ---------------------------------------------------------------------- #
# determinism under an injected clock
# ---------------------------------------------------------------------- #
class TestDeterminism:
    @given(st.lists(st.integers(0, 3), min_size=20, max_size=80))
    @settings(max_examples=20, deadline=None)
    def test_trajectory_is_a_pure_function_of_the_stream(self, choices):
        rng = np.random.default_rng(42)
        ref = rng.normal(0, 1, (120, 3))
        shifted = rng.normal(0, 1, (4, 3)) * 3.0 + 2.0  # four drifted shapes

        def run():
            reg = ModelRegistry()
            model = RandomForestRegressor(n_estimators=3, max_depth=3,
                                          random_state=0).fit(ref, ref[:, 0])
            v1 = reg.register("m", model, promote=True)
            reg.register("m", model.truncated(2))
            reg.promote("m", 2)
            clock = [0.0]
            plane = MonitoringPlane(reg, clock=lambda: clock[0], window=32,
                                    min_window=16, eval_every=8, cooldown_s=5.0)
            plane.watch("m", reference=ref)
            plane.add_rule(PsiThresholdRule(threshold=0.5, action="rollback"))
            for i, c in enumerate(choices):
                clock[0] = float(i)
                plane.on_request("m", shifted[c], "predict")
            return (
                [(e.at, e.rule, e.action, e.value) for e in plane.events],
                plane.status()["m"],
                reg.production_version("m"),
            )

        assert run() == run()


# ---------------------------------------------------------------------- #
# soak: monitored serving stays bit-identical under churn
# ---------------------------------------------------------------------- #
class TestMonitoredSoak:
    def test_bit_identity_under_promote_rollback_churn(self):
        rng = np.random.default_rng(11)
        X = rng.normal(0, 1, (300, 5))
        y = 2 * X[:, 0] + X[:, 1] * X[:, 2] + 0.05 * rng.normal(0, 1, 300)
        m1 = RandomForestRegressor(n_estimators=15, max_depth=6,
                                   random_state=0).fit(X, y)
        m2 = RandomForestRegressor(n_estimators=15, max_depth=6,
                                   random_state=1).fit(X, y)
        rows = rng.normal(0, 1, (240, 5))

        def serve_stream(monitored: bool) -> dict[int, float]:
            """Replay the same churn schedule; map row index -> answer."""
            reg = ModelRegistry()
            v1 = reg.register("m", m1, promote=True)
            v2 = reg.register("m", m2)
            plane = None
            results: dict[int, float] = {}
            lock = threading.Lock()
            with ServingGateway(reg, max_batch=16, max_delay=0.002) as gw:
                if monitored:
                    plane = MonitoringPlane(reg, window=64, min_window=32,
                                            eval_every=16, cooldown_s=1e9)
                    plane.watch("m", reference=X)
                    # alert-only: the policy must OBSERVE the churn, never
                    # steer it (the churn schedule is the test's to control)
                    plane.add_rule(PsiThresholdRule(threshold=1e9,
                                                    action="alert"))
                    plane.attach(gw)
                errors: list[Exception] = []

                # deterministic interleaving: three fixed row shards with
                # barriers at each stage change
                barrier = threading.Barrier(4)
                shards = np.array_split(np.arange(len(rows)), 3)

                def pump(idx: np.ndarray) -> None:
                    try:
                        for stage in range(4):
                            part = idx[stage::4]
                            for i in part:
                                # versioned answers: record with the index so
                                # the two runs compare row-for-row
                                results_i = gw.predict("m", rows[i], timeout=10.0)
                                with lock:
                                    results[int(i)] = results_i
                            barrier.wait(timeout=30.0)
                    except Exception as exc:  # pragma: no cover - fails the test
                        errors.append(exc)

                threads = [threading.Thread(target=pump, args=(s,)) for s in shards]
                for t in threads:
                    t.start()
                # churn between barrier stages: the same schedule each run
                for stage, action in enumerate(("promote", "rollback", "promote")):
                    barrier.wait(timeout=30.0)
                    if action == "promote":
                        reg.promote("m", v2)
                    else:
                        reg.rollback("m")
                barrier.wait(timeout=30.0)
                for t in threads:
                    t.join(timeout=30.0)
                assert not errors, errors
                if monitored:
                    assert gw.tap_errors == 0
                    assert plane.status()["m"]["n_observed"] == len(rows)
            return results

        # barriers pin which version serves each stage, so the two runs are
        # comparable row-for-row despite threading
        plain = serve_stream(monitored=False)
        monitored = serve_stream(monitored=True)
        assert plain.keys() == monitored.keys()
        mismatches = [i for i in plain if plain[i] != monitored[i]]
        assert mismatches == []
