"""Tests for the pluggable shard transport layer (``repro.serve.transport``).

The transport is plumbing, never arithmetic: a cluster on the socket
transport must produce values bit-identical (``np.array_equal``) to the
pipe transport, to a single-process gateway, and to direct predicts —
including through the network front door.  Binary ndarray frames must
round-trip every dtype/order/shape without touching a byte of the
buffer, every channel failure must surface as the one coded
``TransportError`` (510 TRANSPORT_ERROR), and the work-stealing
dispatcher may reroute congested singles only without breaking
per-submitter FIFO or bit-identity.
"""

import pickle
import socket
import struct
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    AsyncServeServer,
    ModelRegistry,
    ServeClient,
    ServingGateway,
    ShardCrashedError,
    ShardedServingCluster,
)
from repro.serve.errors import CodedError, ErrorCode, classify_exception, code_of
from repro.serve.net.protocol import (
    decode_ndarray,
    encode_binary_frame,
    encode_ndarray,
    recv_any_frame,
)
from repro.serve.shard import shard_for_name
from repro.serve.transport import (
    SHARD_MAX_FRAME_BYTES,
    PipeTransport,
    SocketListener,
    SocketTransport,
    TransportError,
    connect_worker_transport,
    make_worker_transport,
)

pytestmark = [pytest.mark.serve, pytest.mark.transport]

D = 6


class LinearModel:
    """Deterministic stand-in: row-wise dot products, so every expected
    value is computable to the bit regardless of batch grouping."""

    def __init__(self, d: int = D, scale: float = 1.0):
        self.w = np.linspace(1.0, 2.0, d) * scale
        self.w2 = np.linspace(0.5, 1.5, d) * scale

    def predict(self, X):
        X = np.asarray(X, dtype=float)
        return np.array([float(np.dot(r, self.w)) for r in X])

    def predict_dist(self, X):
        X = np.asarray(X, dtype=float)
        mean = np.array([float(np.dot(r, self.w)) for r in X])
        var = np.array([float(np.dot(r**2, self.w2)) + 1.0 for r in X])
        return mean, var


def _rows(n, seed=0):
    return np.random.default_rng(seed).normal(0, 1, (n, D))


def _registry(names=("alpha", "beta")):
    reg = ModelRegistry()
    models = {}
    for i, name in enumerate(names):
        models[name] = LinearModel(scale=1.0 + 0.25 * i)
        reg.register(name, models[name], promote=True)
    return reg, models


def _cluster(reg, **kw):
    kw.setdefault("n_shards", 2)
    kw.setdefault("max_batch", 16)
    kw.setdefault("max_delay", 0.002)
    return ShardedServingCluster(reg, **kw)


# ---------------------------------------------------------------------- #
# binary ndarray frames
# ---------------------------------------------------------------------- #
_DTYPES = st.sampled_from(["<f8", "<f4", "<i8", "<i4", "<u2", "|b1"])


class TestNdarrayCodec:
    @given(
        dtype=_DTYPES,
        shape=st.lists(st.integers(0, 5), min_size=0, max_size=3),
        order=st.sampled_from(["C", "F"]),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=200, deadline=None)
    def test_round_trip_preserves_bytes_shape_order(self, dtype, shape, order, seed):
        rng = np.random.default_rng(seed)
        arr = (rng.normal(0, 100, size=shape) if np.dtype(dtype).kind == "f"
               else rng.integers(0, 100, size=shape))
        arr = np.asarray(arr.astype(dtype), order=order)
        out = decode_ndarray(encode_ndarray(arr))
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        assert np.array_equal(out, arr)
        assert out.tobytes() == arr.tobytes()  # bit-level, catches -0.0/NaN
        if arr.ndim >= 2 and all(s > 1 for s in arr.shape):
            assert out.flags["F_CONTIGUOUS"] == arr.flags["F_CONTIGUOUS"]

    def test_decoded_array_is_writable(self):
        out = decode_ndarray(encode_ndarray(np.arange(6.0).reshape(2, 3)))
        out[0, 0] = 99.0  # a frombuffer view would raise here

    def test_zero_row_block_survives(self):
        arr = np.empty((0, 7))
        out = decode_ndarray(encode_ndarray(arr))
        assert out.shape == (0, 7) and out.dtype == arr.dtype

    def test_non_finite_values_are_bit_exact(self):
        arr = np.array([np.nan, np.inf, -np.inf, -0.0, 5e-324])
        out = decode_ndarray(encode_ndarray(arr))
        assert out.tobytes() == arr.tobytes()

    def test_object_dtype_refused(self):
        with pytest.raises(Exception):
            encode_ndarray(np.array([object()], dtype=object))

    @given(st.binary(max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_decode_garbage_is_total(self, blob):
        """Any byte string either decodes or raises the coded
        MALFORMED_REQUEST — never a stray struct/numpy exception."""
        try:
            out = decode_ndarray(blob)
        except Exception as exc:
            assert code_of(exc) is ErrorCode.MALFORMED_REQUEST
        else:
            assert isinstance(out, np.ndarray)

    def test_truncated_buffer_is_coded(self):
        data = encode_ndarray(np.arange(16.0))
        with pytest.raises(ValueError) as err:
            decode_ndarray(data[:-8])
        assert code_of(err.value) is ErrorCode.MALFORMED_REQUEST


# ---------------------------------------------------------------------- #
# socket message codec over a socketpair (no processes)
# ---------------------------------------------------------------------- #
@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    ta, tb = SocketTransport(a), SocketTransport(b)
    try:
        yield ta, tb
    finally:
        ta.close()
        tb.close()


class TestSocketCodec:
    def _round_trip(self, pair, msg):
        ta, tb = pair
        ta.send(msg)
        return tb.recv()

    def test_submit_shaped_message(self, pair):
        row = np.random.default_rng(3).normal(0, 1, D)
        got = self._round_trip(pair, ("submit", 17, "alpha", row, "predict"))
        assert got[:3] == ("submit", 17, "alpha")
        assert np.array_equal(got[3], row) and got[3].tobytes() == row.tobytes()
        assert got[4] == "predict"

    def test_type_parity_with_pipe(self, pair):
        """The socket decode must hand back the same *types* a pickle
        round-trip would — np.float64 stays np.float64, tuples stay
        tuples, bytes stay bytes."""
        msg = (
            "result", 1, True,
            (np.float64(1.5), np.float64(2.5)),   # predict_dist single
            np.int64(7), b"\x00raw", [1, (2.0, "x")], {"k": [1, 2]},
        )
        got = self._round_trip(pair, msg)
        ref = pickle.loads(pickle.dumps(msg))
        assert type(got) is tuple and len(got) == len(ref)
        for g, r in zip(got, ref):
            assert type(g) is type(r)
        assert got == ref

    def test_exception_payload_keeps_its_code(self, pair):
        exc = CodedError("model blew up", code=ErrorCode.SCORING_FAILED)
        got = self._round_trip(pair, ("result", 2, False, exc))
        assert isinstance(got[3], CodedError)
        assert classify_exception(got[3]) is ErrorCode.SCORING_FAILED

    def test_fortran_and_empty_arrays(self, pair):
        msgs = (
            ("nd", np.asfortranarray(np.arange(12.0).reshape(3, 4))),
            ("nd", np.zeros((0, 5))),
        )
        for msg in msgs:
            got = self._round_trip(pair, msg)
            assert np.array_equal(got[1], msg[1])
            assert got[1].flags["F_CONTIGUOUS"] == msg[1].flags["F_CONTIGUOUS"]

    def test_eof_is_transport_error(self, pair):
        ta, tb = pair
        ta.close()
        with pytest.raises(TransportError) as err:
            tb.recv()
        assert classify_exception(err.value) is ErrorCode.TRANSPORT_ERROR
        assert err.value.code.retryable  # channel loss is worth a retry

    def test_oversize_frame_is_transport_error(self):
        a, b = socket.socketpair()
        ta = SocketTransport(a)
        tb = SocketTransport(b, max_frame_bytes=64)
        try:
            ta.send(("blob", b"\x00" * 4096))
            with pytest.raises(TransportError):
                tb.recv()
        finally:
            ta.close()
            tb.close()

    def test_blob_without_envelope_is_protocol_violation(self):
        a, b = socket.socketpair()
        tb = SocketTransport(b)
        try:
            a.sendall(encode_binary_frame(b"stray"))
            with pytest.raises(TransportError):
                tb.recv()
        finally:
            a.close()
            tb.close()

    def test_default_cap_admits_model_sized_frames(self):
        # the shard cap must dwarf the 8 MiB network-edge cap: register
        # legitimately ships whole pickled models
        assert SHARD_MAX_FRAME_BYTES >= (1 << 30)


class TestPipeTransportUnit:
    def test_round_trip_and_eof(self):
        import multiprocessing as mp

        a, b = mp.Pipe()
        ta, tb = PipeTransport(a), PipeTransport(b)
        row = np.arange(4.0)
        ta.send(("submit", 0, "m", row, "predict"))
        got = tb.recv()
        assert got[:3] == ("submit", 0, "m") and np.array_equal(got[3], row)
        ta.close()
        with pytest.raises(TransportError):
            tb.recv()
        tb.close()

    def test_send_after_close_is_transport_error(self):
        import multiprocessing as mp

        a, b = mp.Pipe()
        ta = PipeTransport(a)
        ta.close()
        with pytest.raises(TransportError):
            ta.send(("ping",))
        b.close()


# ---------------------------------------------------------------------- #
# listener handshake
# ---------------------------------------------------------------------- #
class TestHandshake:
    def test_token_hello_round_trip(self):
        lst = SocketListener()
        out = {}

        def worker():
            out["t"] = make_worker_transport(("socket", lst.address, lst.token))

        th = threading.Thread(target=worker)
        th.start()
        parent = lst.accept(timeout=10.0)
        th.join(timeout=10.0)
        lst.close()
        try:
            parent.send(("ping", 123))
            assert out["t"].recv() == ("ping", 123)
        finally:
            parent.close()
            out["t"].close()

    def test_wrong_token_rejected(self):
        lst = SocketListener()

        def impostor():
            try:
                connect_worker_transport(lst.address, "not-the-token")
            except TransportError:
                pass

        th = threading.Thread(target=impostor)
        th.start()
        try:
            with pytest.raises(TransportError):
                lst.accept(timeout=10.0)
        finally:
            th.join(timeout=10.0)
            lst.close()

    def test_accept_timeout_is_transport_error(self):
        lst = SocketListener()
        try:
            with pytest.raises(TransportError):
                lst.accept(timeout=0.05)
        finally:
            lst.close()


# ---------------------------------------------------------------------- #
# cluster identity across transports (forks worker processes)
# ---------------------------------------------------------------------- #
@pytest.mark.shard
class TestClusterTransportIdentity:
    def test_constructor_rejects_unknown_transport(self):
        reg, _ = _registry()
        with pytest.raises(ValueError):
            ShardedServingCluster(reg, n_shards=2, transport="carrier-pigeon")
        with pytest.raises(ValueError):
            ShardedServingCluster(reg, n_shards=2, steal_threshold=0)

    def test_hash_route_socket_identical_to_pipe_and_direct(self):
        rows = _rows(80, seed=21)
        got = {}
        for transport in ("pipe", "socket"):
            reg, models = _registry()
            with _cluster(reg, route="hash", transport=transport) as cluster:
                tickets = [
                    cluster.submit(name, r)
                    for r in rows for name in ("alpha", "beta")
                ]
                cluster.flush()
                got[transport] = np.array([t.result(timeout=30.0) for t in tickets])
        ref = np.array([
            float(models[name].predict(r[None, :])[0])
            for r in rows for name in ("alpha", "beta")
        ])
        assert np.array_equal(got["pipe"], ref)
        assert np.array_equal(got["socket"], ref)
        assert np.array_equal(got["socket"], got["pipe"])

    def test_replicated_block_fanout_socket_identical(self):
        reg, models = _registry()
        X = _rows(97, seed=22)  # odd count: uneven chunks must reassemble
        with _cluster(reg, route="replicated", transport="socket",
                      max_batch=64) as cluster:
            assert np.array_equal(
                cluster.predict_block("alpha", X, timeout=30.0),
                models["alpha"].predict(X),
            )
            m, v = cluster.submit_block("beta", X, kind="predict_dist").result(30.0)
            mr, vr = models["beta"].predict_dist(X)
            assert np.array_equal(m, mr) and np.array_equal(v, vr)

    @pytest.mark.net
    def test_socket_cluster_through_network_front_door(self):
        """The acceptance gate end to end: TCP edge -> socket-transport
        cluster -> worker gateways, still bit-identical."""
        rows = _rows(60, seed=23)
        reg, models = _registry()
        with _cluster(reg, route="hash", transport="socket") as cluster:
            with AsyncServeServer(cluster) as server:
                with ServeClient(server.host, server.port) as client:
                    for r in rows:
                        client.send("alpha", r)
                        client.send("beta", r)
                    got = np.array(client.drain())
        ref = np.array([
            float(models[name].predict(r[None, :])[0])
            for r in rows for name in ("alpha", "beta")
        ])
        assert np.array_equal(got, ref)


# ---------------------------------------------------------------------- #
# work-stealing dispatch (forks worker processes)
# ---------------------------------------------------------------------- #
def _hot_names(n_shards=2):
    """Names all owned by one shard — maximal hash skew, the other idles."""
    target = shard_for_name("alpha", n_shards)
    names = ["alpha"]
    i = 0
    while len(names) < 2:
        cand = f"hot-{i}"
        if shard_for_name(cand, n_shards) == target:
            names.append(cand)
        i += 1
    return names


@pytest.mark.shard
class TestWorkStealing:
    def test_congested_singles_reroute_and_stay_identical(self):
        names = _hot_names()
        reg, models = _registry(names)
        rows = _rows(150, seed=31)
        with _cluster(reg, route="hash", transport="pipe", steal=True,
                      steal_threshold=1, max_delay=0.005) as cluster:
            tickets = [(name, r, cluster.submit(name, r))
                       for r in rows for name in names]
            cluster.flush()
            for name, r, t in tickets:
                assert t.result(timeout=30.0) == float(
                    models[name].predict(r[None, :])[0])
            assert cluster.steals > 0

    def test_disabled_by_default_and_never_counts(self):
        names = _hot_names()
        reg, models = _registry(names)
        rows = _rows(60, seed=32)
        with _cluster(reg, route="hash", max_delay=0.005) as cluster:
            assert cluster.steal is False
            tickets = [cluster.submit(names[0], r) for r in rows]
            cluster.flush()
            [t.result(timeout=30.0) for t in tickets]
            assert cluster.steals == 0

    def test_blocks_are_never_stolen(self):
        """Stealing is a single-row affair: block fan-out keeps its
        routing so chunk reassembly stays deterministic."""
        names = _hot_names()
        reg, models = _registry(names)
        X = _rows(64, seed=33)
        with _cluster(reg, route="hash", steal=True, steal_threshold=1,
                      max_batch=8) as cluster:
            before = cluster.steals
            got = cluster.predict_block(names[0], X, timeout=30.0)
            assert np.array_equal(got, models[names[0]].predict(X))
            assert cluster.steals == before

    def test_fifo_witness_soak_per_submitter(self):
        """4 submitter threads, stealing on: every submitter's stream
        completes losslessly, in order, bit-identical — rerouting must be
        invisible in each thread's observed sequence."""
        names = _hot_names()
        reg, models = _registry(names)
        n_threads, n_rows = 4, 80
        results = [None] * n_threads
        errors = []

        with _cluster(reg, route="hash", transport="socket", steal=True,
                      steal_threshold=2, max_delay=0.003) as cluster:

            def submitter(tid):
                rng = np.random.default_rng(100 + tid)
                rows = rng.normal(0, 1, (n_rows, D))
                name = names[tid % len(names)]
                try:
                    tickets = [cluster.submit(name, r) for r in rows]
                    cluster.flush(name)
                    got = [t.result(timeout=30.0) for t in tickets]
                    results[tid] = (name, rows, got)
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append((tid, exc))

            threads = [threading.Thread(target=submitter, args=(i,))
                       for i in range(n_threads)]
            for th in threads:
                th.start()
            for th in threads:
                th.join(timeout=60.0)

        assert not errors, errors
        for tid in range(n_threads):
            name, rows, got = results[tid]
            assert len(got) == n_rows  # lossless
            ref = [float(models[name].predict(r[None, :])[0]) for r in rows]
            assert got == ref  # in order and bit-identical


# ---------------------------------------------------------------------- #
# fault containment on the socket transport (forks worker processes)
# ---------------------------------------------------------------------- #
@pytest.mark.shard
@pytest.mark.faults
class TestSocketFaults:
    def test_kill_during_flight_fails_pending_then_respawns(self):
        reg, models = _registry(("alpha",))
        rows = _rows(40, seed=41)
        with _cluster(reg, n_shards=1, route="hash", transport="socket",
                      max_delay=0.05, max_batch=256) as cluster:
            tickets = [cluster.submit("alpha", r) for r in rows]
            cluster.kill_shard(0)
            outcomes = []
            for t in tickets:
                try:
                    outcomes.append(("ok", t.result(timeout=30.0)))
                except ShardCrashedError as exc:
                    assert classify_exception(exc) is ErrorCode.SHARD_CRASHED
                    outcomes.append(("crashed", None))
            # no hangs: every ticket resolved one way or the other; a
            # kill mid-flight must fail at least the queued tail
            assert any(kind == "crashed" for kind, _ in outcomes)
            assert cluster.respawn() == 1
            t = cluster.submit("alpha", rows[0])
            cluster.flush()
            assert t.result(timeout=30.0) == float(
                models["alpha"].predict(rows[0][None, :])[0])

    def test_worker_send_failure_classifies_as_transport_error(self):
        """The taxonomy gate: a snapped socket surfaces as the coded
        TRANSPORT_ERROR, not an anonymous OSError."""
        a, b = socket.socketpair()
        t = SocketTransport(a)
        b.close()
        big = ("x", b"\x00" * (1 << 22))  # overflow the send buffer
        with pytest.raises(TransportError) as err:
            for _ in range(64):
                t.send(big)
        assert classify_exception(err.value) is ErrorCode.TRANSPORT_ERROR
        t.close()
