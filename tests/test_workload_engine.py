"""Tests for workload synthesis, applications, and the simulation engine."""

import numpy as np
import pytest

from repro.config import theta_config
from repro.rng import generator_from
from repro.simulator import simulate
from repro.simulator.applications import (
    FAMILIES,
    OOD_FAMILIES,
    family_index,
    family_names,
    sample_variants,
)
from repro.simulator.workload import build_workload


class TestApplications:
    def test_family_names_order_stable(self):
        names = family_names()
        assert names == family_names()
        assert set(FAMILIES) <= set(names)
        # OoD families come last
        assert names[-len(OOD_FAMILIES):] == list(OOD_FAMILIES)

    def test_family_index(self):
        assert family_names()[family_index("ior")] == "ior"

    def test_sample_variant_columns(self):
        params = sample_variants("hacc", generator_from(0), 50)
        assert params["nprocs"].shape == (50,)
        assert params["total_bytes"].min() > 0
        assert np.all((params["read_frac"] >= 0) & (params["read_frac"] <= 1))

    def test_unit_params_snapped_to_lattice(self):
        params = sample_variants("qb", generator_from(0), 200)
        vals = np.unique(params["seq_frac"])
        lattice = np.round(vals * 8) / 8
        np.testing.assert_allclose(vals, lattice)

    def test_collective_zero_without_mpiio(self):
        params = sample_variants("writer", generator_from(0), 300)
        assert np.all(params["collective_frac"][~params["uses_mpiio"]] == 0.0)

    def test_montage_never_mpiio(self):
        params = sample_variants("montage", generator_from(0), 100)
        assert not params["uses_mpiio"].any()

    def test_ood_nprocs_outside_training_support(self):
        """lammps_novel runs at scales no in-distribution family reaches."""
        novel = sample_variants("lammps_novel", generator_from(0), 50)
        regular_max = max(
            sample_variants(name, generator_from(1), 200)["nprocs"].max()
            for name in FAMILIES
        )
        assert novel["nprocs"].min() >= regular_max

    def test_sensitivity_ordering_for_fig1b(self):
        """Writer must be the most contention-sensitive family, IOR the least."""
        s = {n: FAMILIES[n].sensitivity_base for n in FAMILIES}
        assert s["writer"] == max(s.values())
        assert s["ior"] == min(s.values())

    def test_sample_zero_returns_empty(self):
        params = sample_variants("ior", generator_from(0), 0)
        assert all(v.shape[0] == 0 for v in params.values())


class TestWorkload:
    def setup_method(self):
        self.cfg = theta_config(n_jobs=4000).workload
        self.plan = build_workload(self.cfg, generator_from(0))

    def test_job_count(self):
        assert abs(self.plan.n_jobs - 4000) < 400

    def test_start_times_sorted_within_span(self):
        t = self.plan.start_time
        assert np.all(np.diff(t) >= 0)
        assert t.min() >= 0 and t.max() < self.cfg.span_years * 365.25 * 86400

    def test_duplicate_fraction_near_target(self):
        counts = np.bincount(self.plan.job_variant)
        dup_jobs = counts[counts >= 2].sum()
        frac = dup_jobs / self.plan.n_jobs
        assert abs(frac - self.cfg.duplicate_fraction) < 0.08

    def test_ood_variants_only_after_cutoff(self):
        cutoff = self.cfg.deployment_cutoff * self.cfg.span_years * 365.25 * 86400
        ood_jobs = self.plan.variant_is_ood[self.plan.job_variant]
        assert ood_jobs.any()
        assert self.plan.start_time[ood_jobs].min() >= cutoff

    def test_batched_sets_exist(self):
        """Some duplicate sets must contain Δt<1s members (§IX batches)."""
        t = self.plan.start_time
        v = self.plan.job_variant
        order = np.lexsort((t, v))
        same_variant = np.diff(v[order]) == 0
        dt = np.diff(t[order])
        assert np.any(same_variant & (dt < 1.0))

    def test_variant_params_cover_all_variants(self):
        for key, arr in self.plan.variant_params.items():
            assert arr.shape[0] == self.plan.n_variants, key

    def test_min_bytes_enforced(self):
        assert self.plan.variant_params["total_bytes"].min() >= self.cfg.min_bytes_gib * 1024**3

    def test_tiny_workload_raises(self):
        from dataclasses import replace
        with pytest.raises(ValueError):
            build_workload(replace(self.cfg, n_jobs=5), generator_from(0))

    def test_reproducible(self):
        plan2 = build_workload(self.cfg, generator_from(0))
        np.testing.assert_array_equal(self.plan.job_variant, plan2.job_variant)
        np.testing.assert_array_equal(self.plan.start_time, plan2.start_time)


class TestEngine:
    def setup_method(self):
        self.res = simulate(theta_config(n_jobs=2500, seed=11))

    def test_validates(self):
        self.res.jobs.validate()

    def test_decomposition_reconstructs_throughput(self):
        """Eq. 3: log φ = fa + fg + fl + fn, exactly."""
        j = self.res.jobs
        np.testing.assert_allclose(
            j.log_throughput, j.fa_dex + j.fg_dex + j.fl_dex + j.fn_dex, atol=1e-9
        )

    def test_end_after_start(self):
        j = self.res.jobs
        assert np.all(j.end_time > j.start_time)

    def test_io_time_consistent(self):
        j = self.res.jobs
        np.testing.assert_allclose(
            j.io_time, (j.total_bytes / 1024**2) / j.throughput_mibps, rtol=1e-9
        )

    def test_seed_reproducibility(self):
        res2 = simulate(theta_config(n_jobs=2500, seed=11))
        np.testing.assert_array_equal(self.res.jobs.throughput_mibps, res2.jobs.throughput_mibps)

    def test_seed_sensitivity(self):
        res2 = simulate(theta_config(n_jobs=2500, seed=12))
        assert not np.array_equal(self.res.jobs.throughput_mibps, res2.jobs.throughput_mibps)

    def test_duplicates_share_fa(self):
        """Members of a duplicate set share the application term exactly."""
        j = self.res.jobs
        counts = np.bincount(j.variant_id)
        vid = int(np.argmax(counts))
        members = np.flatnonzero(j.variant_id == vid)
        assert members.size >= 2
        assert np.unique(j.fa_dex[members]).size == 1

    def test_contention_nonpositive(self):
        assert np.all(self.res.jobs.fl_dex <= 0)

    def test_nodes_cover_cores(self):
        j = self.res.jobs
        cores_per_node = self.res.config.platform.cores_per_node
        assert np.all(j.nodes * cores_per_node >= j.cores)

    def test_take_subset(self):
        sub = self.res.jobs.take(np.arange(10))
        assert len(sub) == 10
        sub.validate()

    def test_result_span_properties(self):
        assert self.res.span > 0
        assert 0 < self.res.deployment_cutoff_time < self.res.span
