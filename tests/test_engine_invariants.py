"""Property tests: invariants of the simulation engine (Eq. 3 bookkeeping)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import cori_config, theta_config
from repro.simulator.engine import simulate

MiB = 1024.0**2


@pytest.fixture(scope="module")
def sim():
    return simulate(theta_config(n_jobs=2000))


class TestEq3Bookkeeping:
    def test_throughput_is_sum_of_components(self, sim):
        j = sim.jobs
        np.testing.assert_allclose(
            np.log10(j.throughput_mibps),
            j.fa_dex + j.fg_dex + j.fl_dex + j.fn_dex,
            rtol=1e-10,
        )

    def test_io_time_consistent_with_throughput(self, sim):
        j = sim.jobs
        np.testing.assert_allclose(
            j.io_time, (j.total_bytes / MiB) / j.throughput_mibps, rtol=1e-10
        )

    def test_duration_covers_io_time(self, sim):
        j = sim.jobs
        assert np.all(j.end_time - j.start_time >= j.io_time - 1e-6)

    def test_contention_never_speeds_up(self, sim):
        assert np.all(sim.jobs.fl_dex <= 0.0)

    def test_jobs_sorted_by_start(self, sim):
        assert np.all(np.diff(sim.jobs.start_time) >= 0.0)

    def test_nodes_cover_processes(self, sim):
        j = sim.jobs
        cores_per_node = sim.config.platform.cores_per_node
        assert np.all(j.nodes * cores_per_node >= j.cores)

    def test_load_other_nonnegative(self, sim):
        assert np.all(sim.jobs.load_other >= 0.0)

    def test_paper_volume_filter(self, sim):
        assert sim.jobs.total_bytes.min() >= sim.config.workload.min_bytes_gib * 1024.0**3


class TestReproducibility:
    def test_same_seed_identical_population(self):
        a = simulate(theta_config(n_jobs=600))
        b = simulate(theta_config(n_jobs=600))
        np.testing.assert_array_equal(a.jobs.throughput_mibps, b.jobs.throughput_mibps)
        np.testing.assert_array_equal(a.jobs.start_time, b.jobs.start_time)

    def test_different_seed_different_population(self):
        a = simulate(theta_config(n_jobs=600, seed=1))
        b = simulate(theta_config(n_jobs=600, seed=2))
        assert not np.allclose(a.jobs.throughput_mibps, b.jobs.throughput_mibps)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000))
    def test_validate_passes_for_any_seed(self, seed):
        sim = simulate(theta_config(n_jobs=400, seed=seed))
        sim.jobs.validate()  # raises on any inconsistency

    def test_job_count_exact(self):
        for n in (500, 1234):
            assert len(simulate(theta_config(n_jobs=n)).jobs) == n


class TestCrossPlatform:
    def test_cori_faster_in_aggregate(self):
        """Cori's peak bandwidth is ~4x Theta's; medians must reflect it."""
        t = simulate(theta_config(n_jobs=1500))
        c = simulate(cori_config(n_jobs=1500))
        assert np.median(c.jobs.throughput_mibps) > np.median(t.jobs.throughput_mibps)

    def test_platform_telemetry_flags(self):
        t = simulate(theta_config(n_jobs=200))
        c = simulate(cori_config(n_jobs=200))
        assert t.config.platform.has_cobalt and not t.config.platform.has_lmt
        assert c.config.platform.has_lmt and not c.config.platform.has_cobalt
