"""Tests for the command-line interface (direct main() invocation)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.config import theta_config
from repro.data import build_dataset


@pytest.fixture(scope="module")
def saved_dataset(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "theta.npz"
    build_dataset(theta_config(n_jobs=800)).save(path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_platform_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["census", "--platform", "summit"])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for cmd in ("generate", "census", "noise", "taxonomy", "cluster",
                    "export-darshan", "drift", "schedule"):
            assert cmd in text


class TestCommands:
    def test_generate_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "mini.npz"
        rc = main(["generate", "--platform", "theta", "--jobs", "300", "--out", str(out)])
        assert rc == 0
        assert out.exists()
        assert "300" in capsys.readouterr().out

    def test_census_on_saved_dataset(self, saved_dataset, capsys):
        rc = main(["census", "--dataset", str(saved_dataset)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "duplicate fraction" in out
        assert "application bound" in out

    def test_noise_on_saved_dataset(self, saved_dataset, capsys):
        rc = main(["noise", "--dataset", str(saved_dataset)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "68% band" in out
        assert "±" in out

    def test_cluster_report(self, saved_dataset, capsys):
        rc = main(["cluster", "--dataset", str(saved_dataset), "--clusters", "6"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Workload clusters" in out

    def test_export_darshan(self, saved_dataset, tmp_path, capsys):
        rc = main(["export-darshan", "--dataset", str(saved_dataset),
                   "--out", str(tmp_path / "logs"), "--limit", "10"])
        assert rc == 0
        assert len(list((tmp_path / "logs").glob("*.darshan.txt"))) == 10

    def test_drift_report(self, saved_dataset, capsys):
        rc = main(["drift", "--dataset", str(saved_dataset), "--top", "3"])
        assert rc == 0
        assert "PSI" in capsys.readouterr().out

    def test_schedule_comparison(self, capsys):
        rc = main(["schedule", "--jobs", "60", "--groups", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        for policy in ("contiguous", "cluster", "random"):
            assert policy in out

    @pytest.mark.serve
    @pytest.mark.gateway
    def test_serve_bench_gateway_mode(self, capsys):
        """Small multi-model gateway run through the CLI — the bench core
        asserts per-name bit-identity before printing anything."""
        rc = main(["serve-bench", "--gateway", "--requests", "200",
                   "--trees", "20", "--target-ms", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Gateway serving" in out
        assert "forest" in out and "gbm" in out
        assert "tuned batch" in out
