"""Equivalence suite for the packed-forest engine and the training kernels.

The perf layer's contract is that none of it changes any number:

* :class:`~repro.ml.predictor.PackedForest` must reproduce the per-tree
  prediction loop **bit-for-bit** (``np.array_equal`` on float64),
* histogram subtraction must grow the same trees as the direct histogram
  path, and
* the binning cache and parallel tree training must be invisible.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.binning import QuantileBinner
from repro.ml.forest import RandomForestRegressor
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.predictor import PackedForest
from repro.ml.tree import BinnedTree


def _data(n=1500, d=8, seed=7):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n, d))
    y = (
        np.sin(2 * X[:, 0])
        + 0.5 * X[:, 1] ** 2
        + X[:, 2] * X[:, 3]
        + 0.05 * rng.normal(0, 1, n)
    )
    return X, y


@pytest.fixture(scope="module")
def data():
    return _data()


@pytest.fixture(scope="module")
def gbm(data):
    X, y = data
    return GradientBoostingRegressor(n_estimators=30, max_depth=5, loss="squared").fit(X, y)


@pytest.fixture(scope="module")
def forest(data):
    X, y = data
    return RandomForestRegressor(n_estimators=40, max_depth=10, random_state=3).fit(X, y)


class TestPackedForestEquivalence:
    def test_gbm_predict_bitwise(self, data, gbm):
        X, _ = data
        Xt = np.random.default_rng(1).normal(0, 1, (400, X.shape[1]))
        codes = gbm.binner_.transform(np.asarray(Xt, dtype=float))
        ref = np.full(Xt.shape[0], gbm.base_score_)
        for tree in gbm.trees_:
            ref += gbm.learning_rate * tree.predict(codes)
        assert np.array_equal(gbm.predict(Xt), ref)

    def test_gbm_staged_predict_bitwise(self, data, gbm):
        X, _ = data
        Xt = X[:300]
        codes = gbm.binner_.transform(np.asarray(Xt, dtype=float))
        staged = gbm.staged_predict(Xt)
        pred = np.full(Xt.shape[0], gbm.base_score_)
        ref = np.empty((len(gbm.trees_), Xt.shape[0]))
        for i, tree in enumerate(gbm.trees_):
            pred = pred + gbm.learning_rate * tree.predict(codes)
            ref[i] = pred
        assert np.array_equal(staged, ref)
        assert np.array_equal(staged[-1], gbm.predict(Xt))

    def test_forest_matrix_bitwise(self, data, forest):
        X, _ = data
        Xt = np.random.default_rng(2).normal(0, 1, (350, X.shape[1]))
        codes = forest.binner_.transform(np.asarray(Xt, dtype=float))
        ref = np.stack([tree.predict(codes) for tree in forest.trees_])
        assert np.array_equal(forest._tree_matrix(Xt), ref)

    def test_forest_predict_dist_bitwise(self, data, forest):
        X, _ = data
        Xt = X[:250]
        codes = forest.binner_.transform(np.asarray(Xt, dtype=float))
        ref = np.stack([tree.predict(codes) for tree in forest.trees_])
        mean, var = forest.predict_dist(Xt)
        assert np.array_equal(mean, ref.mean(axis=0))
        assert np.array_equal(var, ref.var(axis=0))
        assert np.array_equal(forest.predict(Xt), ref.mean(axis=0))

    def test_pack_matrix_matches_tree_loop(self, data):
        """Direct PackedForest vs BinnedTree.predict, incl. stumps."""
        X, y = data
        codes = QuantileBinner(32).fit_transform(X)
        trees = [
            BinnedTree(max_depth=depth, min_child_weight=2.0).fit(codes, -y)
            for depth in (0, 1, 4, 9)
        ]
        pack = PackedForest.from_trees(trees)
        mat = pack.predict_matrix(codes)
        for i, tree in enumerate(trees):
            assert np.array_equal(mat[i], tree.predict(codes))

    def test_predict_matrix_many_bitwise(self, data, forest):
        """Batch-of-batches: split results equal per-block arena calls."""
        X, _ = data
        codes = forest.binner_.transform(np.asarray(X, dtype=float))
        pack = forest._ensure_pack()
        bounds = [0, 1, 4, 100, 101, 230]
        blocks = [codes[s:e] for s, e in zip(bounds[:-1], bounds[1:])]
        many = pack.predict_matrix_many(blocks)
        assert len(many) == len(blocks)
        for block, mat in zip(blocks, many):
            assert np.array_equal(mat, pack.predict_matrix(block))
        assert pack.predict_matrix_many([]) == []

    def test_predict_many_bitwise(self, data, gbm, forest):
        """Estimator-level batch-of-batches equals per-block predicts."""
        X, _ = data
        blocks = [X[:1], X[1:4], X[4:60], X[60:61]]
        for out, block in zip(gbm.predict_many(blocks), blocks):
            assert np.array_equal(out, gbm.predict(block))
        for out, block in zip(forest.predict_many(blocks), blocks):
            assert np.array_equal(out, forest.predict(block))
        for (m, v), block in zip(forest.predict_dist_many(blocks), blocks):
            ref_m, ref_v = forest.predict_dist(block)
            assert np.array_equal(m, ref_m)
            assert np.array_equal(v, ref_v)

    def test_empty_pack(self):
        pack = PackedForest.from_trees([])
        assert pack.n_trees == 0 and pack.max_depth == 0
        assert pack.predict_matrix(np.zeros((5, 3), dtype=np.uint8)).shape == (0, 5)

    def test_unfitted_tree_rejected(self):
        with pytest.raises(RuntimeError):
            PackedForest.from_trees([BinnedTree()])


class TestPackedLayoutDtypes:
    def test_tree_nodes_small_dtypes(self, data):
        X, y = data
        codes = QuantileBinner(64).fit_transform(X)
        nd = BinnedTree(max_depth=6, min_child_weight=2.0).fit(codes, -y).nodes_
        assert nd.threshold.dtype == np.uint8
        assert nd.feature.dtype == np.int32
        assert nd.left.dtype == np.int32
        assert nd.right.dtype == np.int32
        assert nd.value.dtype == np.float64
        internal = nd.feature >= 0
        assert np.array_equal(nd.right[internal], nd.left[internal] + 1)

    def test_arena_small_dtypes(self, forest):
        pack = forest._ensure_pack()
        assert pack.threshold.dtype == np.uint8
        assert pack.feature.dtype == np.int32
        assert pack.left.dtype == np.int32
        assert pack.roots.dtype == np.int32
        assert pack.value.dtype == np.float64
        # leaves self-loop with an always-false test (codes are < 255)
        leaf = pack.left == np.arange(pack.n_nodes, dtype=np.int32)
        assert np.all(pack.threshold[leaf] == 255)

    def test_arena_depth_is_actual_depth(self, data):
        X, y = data
        codes = QuantileBinner(32).fit_transform(X)
        tree = BinnedTree(max_depth=12, min_child_weight=200.0).fit(codes, -y)
        pack = PackedForest.from_trees([tree])
        assert pack.max_depth == tree.nodes_.depth
        assert pack.max_depth < 12  # min_child_weight stops growth early


class TestArenaInvariantProperties:
    """Property-based sweep of the layout invariants the arena relies on.

    Randomized fitted ensembles (hyperparameters drawn by hypothesis) must
    always satisfy: adjacent children (``right == left + 1``), self-looping
    leaves with an always-false test (``left = self``, ``threshold = 255``),
    and binned codes strictly below 255 — the three facts that make the
    branch-free depth loop correct.
    """

    @staticmethod
    def _random_model(kind, seed, depth, n_trees, mcw):
        rng = np.random.default_rng(seed)
        X = rng.normal(0, 1, (180, 4))
        y = np.sin(X[:, 0]) + X[:, 1] * X[:, 2] + 0.1 * rng.normal(0, 1, 180)
        if kind == "gbm":
            model = GradientBoostingRegressor(
                n_estimators=n_trees, max_depth=depth, min_child_weight=mcw,
                subsample=0.8, colsample_bytree=0.8, loss="squared",
                random_state=seed,
            )
        else:
            model = RandomForestRegressor(
                n_estimators=n_trees, max_depth=depth, min_child_weight=mcw,
                random_state=seed,
            )
        return model.fit(X, y), X

    @settings(deadline=None, max_examples=12)
    @given(
        kind=st.sampled_from(["gbm", "forest"]),
        seed=st.integers(0, 2**16),
        depth=st.integers(0, 8),
        n_trees=st.integers(1, 8),
        mcw=st.floats(1.0, 40.0),
    )
    def test_arena_invariants_hold_for_random_ensembles(self, kind, seed, depth, n_trees, mcw):
        model, X = self._random_model(kind, seed, depth, n_trees, mcw)
        # per-tree layout: children are always appended adjacently
        for tree in model.trees_:
            nd = tree.nodes_
            internal = nd.feature >= 0
            assert np.array_equal(nd.right[internal], nd.left[internal] + 1)
            assert np.all(nd.left[internal] > np.flatnonzero(internal))  # parents precede children
        # binned codes stay < 255 so the uint8-255 leaf sentinel is unreachable
        codes = model.binner_.transform(np.asarray(X, dtype=float))
        assert codes.max(initial=0) < 255
        # arena rewrite: leaves self-loop with the always-false split test
        pack = model._ensure_pack()
        idx = np.arange(pack.n_nodes, dtype=np.int32)
        leaf = pack.left == idx
        assert np.all(pack.threshold[leaf] == 255)
        assert np.all(pack.feature[leaf] == 0)
        assert leaf.sum() == sum(t.nodes_.n_leaves for t in model.trees_)
        # internal arena nodes point strictly forward, inside the arena
        assert np.all(pack.left[~leaf] > idx[~leaf])
        assert np.all(pack.left < pack.n_nodes)
        assert np.array_equal(np.sort(pack.roots), pack.roots)
        # and the packed matrix still matches the per-tree loop bit-for-bit
        mat = pack.predict_matrix(codes)
        for i, tree in enumerate(model.trees_):
            assert np.array_equal(mat[i], tree.predict(codes))

    @settings(deadline=None, max_examples=8)
    @given(seed=st.integers(0, 2**16), n_keep=st.integers(0, 10))
    def test_pack_invalidated_on_truncation(self, seed, n_keep):
        """Dropping trees must invalidate the lazy pack, not serve stale trees."""
        model, X = self._random_model("gbm", seed, depth=3, n_trees=10, mcw=2.0)
        model.predict(X[:20])  # builds the 10-tree pack
        model.trees_ = model.trees_[:n_keep]  # early-stop style truncation
        codes = model.binner_.transform(np.asarray(X[:40], dtype=float))
        ref = np.full(40, model.base_score_)
        for tree in model.trees_:
            ref += model.learning_rate * tree.predict(codes)
        assert np.array_equal(model.predict(X[:40]), ref)
        assert model._pack.n_trees == n_keep

    @settings(deadline=None, max_examples=6)
    @given(seed=st.integers(0, 2**16))
    def test_pack_invalidated_on_refit(self, seed):
        """A refit on different data must rebuild the arena from scratch."""
        model, X = self._random_model("gbm", seed, depth=3, n_trees=5, mcw=2.0)
        model.predict(X[:10])
        stale_pack = model._pack
        rng = np.random.default_rng(seed + 1)
        X2 = rng.normal(0, 1, (150, 4))
        y2 = X2[:, 0] ** 2 + 0.1 * rng.normal(0, 1, 150)
        model.fit(X2, y2)
        pred = model.predict(X2[:30])
        assert model._pack is not stale_pack
        fresh = GradientBoostingRegressor(
            n_estimators=5, max_depth=3, min_child_weight=2.0,
            subsample=0.8, colsample_bytree=0.8, loss="squared",
            random_state=seed,
        ).fit(X2, y2)
        assert np.array_equal(pred, fresh.predict(X2[:30]))


class TestHistogramSubtraction:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("unit_hess", [True, False])
    def test_tree_structure_identity(self, seed, unit_hess):
        """Subtraction-derived histograms grow the same trees as direct ones."""
        rng = np.random.default_rng(seed)
        X = rng.normal(0, 1, (1200, 8))
        y = np.sin(X[:, 0]) + X[:, 1] * X[:, 2] + 0.5 * X[:, 3] + rng.normal(0, 0.1, 1200)
        codes = QuantileBinner(32).fit_transform(X)
        hess = None if unit_hess else np.abs(y) + 0.5
        kw = dict(max_depth=9, min_child_weight=5.0)
        t_sub = BinnedTree(hist_subtraction=True, **kw).fit(codes, -y, hess)
        t_ref = BinnedTree(hist_subtraction=False, **kw).fit(codes, -y, hess)
        assert np.array_equal(t_sub.nodes_.feature, t_ref.nodes_.feature)
        assert np.array_equal(t_sub.nodes_.threshold, t_ref.nodes_.threshold)
        assert np.array_equal(t_sub.nodes_.left, t_ref.nodes_.left)
        assert np.array_equal(t_sub.nodes_.right, t_ref.nodes_.right)
        np.testing.assert_allclose(t_sub.nodes_.value, t_ref.nodes_.value, rtol=1e-8, atol=1e-12)

    @pytest.mark.parametrize("loss", ["squared", "huber", "quantile"])
    def test_gbm_losses_equivalent(self, data, loss):
        """Full-model check across losses: same structures, ~same predictions."""
        X, y = data
        kw = dict(n_estimators=12, max_depth=8, min_child_weight=5.0, loss=loss)
        m_sub = GradientBoostingRegressor(hist_subtraction=True, **kw).fit(X, y)
        m_ref = GradientBoostingRegressor(hist_subtraction=False, **kw).fit(X, y)
        for t_sub, t_ref in zip(m_sub.trees_, m_ref.trees_):
            assert np.array_equal(t_sub.nodes_.feature, t_ref.nodes_.feature)
            assert np.array_equal(t_sub.nodes_.threshold, t_ref.nodes_.threshold)
        np.testing.assert_allclose(m_sub.predict(X[:200]), m_ref.predict(X[:200]), rtol=1e-9)


class TestEarlyStoppingCurves:
    def test_curves_truncated_with_trees(self, data):
        X, y = data
        m = GradientBoostingRegressor(
            n_estimators=200, max_depth=3, learning_rate=0.5,
            early_stopping_rounds=5, loss="squared",
        )
        m.fit(X[:800], y[:800], eval_set=(X[800:], y[800:]))
        assert len(m.trees_) < 200
        assert len(m.train_curve_) == len(m.trees_)
        assert len(m.eval_curve_) == len(m.trees_)
        # the retained eval curve ends at its minimum (the rolled-back best)
        assert m.eval_curve_[-1] == min(m.eval_curve_)


def _frozen(X):
    X = np.asarray(X, dtype=float)
    X.setflags(write=False)
    return X


class TestBinningCache:
    def test_fit_transform_cached_on_frozen_identity(self):
        X = _frozen(np.random.default_rng(0).normal(0, 1, (300, 4)))
        c1 = QuantileBinner(32).fit_transform(X)
        c2 = QuantileBinner(32).fit_transform(X)
        assert c1 is c2  # same array object: binned once
        assert not c1.flags.writeable

    def test_writable_arrays_never_cached(self):
        """Mutable inputs must be re-binned: in-place edits (e.g. permutation
        importance shuffling a column) must be visible to the next predict."""
        X = np.random.default_rng(4).normal(0, 1, (300, 4))
        binner = QuantileBinner(32)
        c1 = binner.fit_transform(X)
        assert c1.flags.writeable  # fresh, caller-owned
        X[:, 2] = X[::-1, 2].copy()
        c2 = binner.fit(X).transform(X)
        assert c2 is not c1
        assert not np.array_equal(c2[:, 2], c1[:, 2])

    def test_readonly_view_of_writable_base_not_cached(self):
        """writeable=False on a view is not immutability: the base can still
        change underneath, so such arrays must bypass the cache."""
        X = np.random.default_rng(5).normal(0, 1, (200, 3))
        v = X.view()
        v.setflags(write=False)
        c1 = QuantileBinner(16).fit_transform(v)
        X[:, 0] = -X[:, 0]
        c2 = QuantileBinner(16).fit_transform(v)
        assert c2 is not c1
        assert not np.array_equal(c1[:, 0], c2[:, 0])

    def test_permutation_importance_works_on_frozen_arrays(self):
        """The documented sweep opt-in (frozen X) must not break mutating
        consumers: permutation importance shuffles a private copy."""
        from repro.ml.importance import permutation_importance

        X = _frozen(np.random.default_rng(6).normal(0, 1, (400, 4)))
        y = X[:, 0] + 0.05 * np.random.default_rng(7).normal(0, 1, 400)
        m = GradientBoostingRegressor(n_estimators=25, max_depth=3, loss="squared").fit(X, y)
        imp = permutation_importance(m, X, y, n_repeats=2)
        assert imp[0] > max(imp[1:].max(), 0.0)
        assert not X.flags.writeable  # caller memory untouched

    def test_cache_keyed_on_bins_and_identity(self):
        X = _frozen(np.random.default_rng(1).normal(0, 1, (300, 4)))
        c32 = QuantileBinner(32).fit_transform(X)
        c16 = QuantileBinner(16).fit_transform(X)
        assert c16 is not c32
        X_copy = _frozen(X.copy())
        c_copy = QuantileBinner(32).fit_transform(X_copy)
        assert c_copy is not c32
        assert np.array_equal(c_copy, c32)  # equal content, recomputed

    def test_eval_transform_shares_edges(self):
        X = _frozen(np.random.default_rng(2).normal(0, 1, (300, 4)))
        Xe = _frozen(np.random.default_rng(3).normal(0, 1, (100, 4)))
        b1 = QuantileBinner(32).fit(X)
        b2 = QuantileBinner(32).fit(X)
        assert b1.edges_ is b2.edges_  # edge cache hit
        assert b1.transform(Xe) is b2.transform(Xe)  # code cache hit


class TestForestParallelTraining:
    def test_n_jobs_invariant(self, data):
        X, y = data
        kw = dict(n_estimators=20, max_depth=8, random_state=5)
        f1 = RandomForestRegressor(n_jobs=1, **kw).fit(X, y)
        f2 = RandomForestRegressor(n_jobs=4, **kw).fit(X, y)
        assert np.array_equal(f1.predict(X[:100]), f2.predict(X[:100]))
        assert f1.oob_mae_ == f2.oob_mae_
        assert np.array_equal(
            np.asarray(f1.oob_prediction_), np.asarray(f2.oob_prediction_), equal_nan=True
        )

    def test_oob_matches_per_tree_reference(self, data):
        """Vectorized OOB equals the old per-tree accumulation (allclose)."""
        X, y = data
        f = RandomForestRegressor(n_estimators=15, max_depth=8, random_state=2).fit(X, y)
        n = X.shape[0]
        codes = f.binner_.transform(np.asarray(X, dtype=float))
        # re-derive each tree's bootstrap rows from its spawned seed stream
        seeds = np.random.SeedSequence(f.random_state).spawn(f.n_estimators)
        oob_sum = np.zeros(n)
        oob_count = np.zeros(n)
        d = X.shape[1]
        n_feats = max(1, int(round(f.max_features * d)))
        for seed, tree in zip(seeds, f.trees_):
            rng = np.random.default_rng(seed)
            if n_feats < d:
                rng.choice(d, n_feats, replace=False)
            rows = rng.integers(0, n, n)
            in_bag = np.zeros(n, dtype=bool)
            in_bag[rows] = True
            out = ~in_bag
            oob_sum[out] += tree.predict(codes[out])
            oob_count[out] += 1
        seen = oob_count > 0
        ref = oob_sum[seen] / oob_count[seen]
        np.testing.assert_allclose(np.asarray(f.oob_prediction_)[seen], ref, rtol=1e-12)
