"""Tests for the text-mode visualization helpers."""

import numpy as np

from repro.viz import ascii_heatmap, ascii_histogram, ascii_scatter, format_table


class TestHistogram:
    def test_contains_counts(self):
        out = ascii_histogram(np.random.default_rng(0).normal(0, 1, 500), bins=10, title="T")
        assert out.startswith("T")
        assert out.count("\n") == 10

    def test_empty_data(self):
        assert "(no data)" in ascii_histogram(np.array([np.nan]))


class TestHeatmap:
    def test_labels_present(self):
        M = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = ascii_heatmap(M, x_labels=["a", "b"], y_labels=["r1", "r2"], title="H")
        assert "r1" in out and "a" in out and "H" in out

    def test_handles_inf(self):
        M = np.array([[1.0, np.inf]])
        out = ascii_heatmap(M)
        assert "··" in out


class TestScatter:
    def test_dimensions(self):
        x = np.random.default_rng(0).uniform(1, 100, 300)
        y = np.random.default_rng(1).normal(0, 1, 300)
        out = ascii_scatter(x, y, width=40, height=8, logx=True)
        lines = out.splitlines()
        assert len(lines) == 9  # 8 rows + footer
        assert "(log10)" in lines[-1]

    def test_empty(self):
        assert "(no data)" in ascii_scatter(np.array([]), np.array([]))


class TestTable:
    def test_alignment_and_title(self):
        out = format_table(
            ["name", "paper", "measured"],
            [["bound", 10.01, 11.2], ["noise", 5.71, 5.6]],
            title="rows",
        )
        lines = out.splitlines()
        assert lines[0] == "rows"
        assert "10.01" in out and "bound" in out

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out
