"""Tests for the MLP, deep ensembles, and the AU/EU decomposition."""

import numpy as np
import pytest

from repro.data.preprocessing import Standardizer
from repro.ml.base import Pipeline
from repro.ml.ensemble import DeepEnsemble
from repro.ml.linear import RidgeRegression
from repro.ml.nn import MLPRegressor


class TestMLP:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.X = rng.normal(0, 1, (1200, 6))
        self.y = np.sin(self.X[:, 0]) + 0.5 * self.X[:, 1] + 0.05 * rng.normal(0, 1, 1200)

    def test_learns_nonlinear_function(self):
        m = MLPRegressor(hidden=(64, 64), epochs=40, random_state=0)
        m.fit(self.X[:1000], self.y[:1000])
        mae = np.mean(np.abs(m.predict(self.X[1000:]) - self.y[1000:]))
        baseline = np.mean(np.abs(self.y[1000:] - self.y[:1000].mean()))
        assert mae < 0.5 * baseline

    def test_train_curve_decreases(self):
        m = MLPRegressor(hidden=(32,), epochs=20, random_state=0)
        m.fit(self.X, self.y)
        assert m.train_curve_[-1] < m.train_curve_[0]

    def test_nll_head_learns_heteroscedastic_variance(self):
        rng = np.random.default_rng(1)
        X = rng.normal(0, 1, (2000, 3))
        y = X[:, 0] + np.exp(0.6 * X[:, 1]) * rng.normal(0, 0.3, 2000)
        m = MLPRegressor(hidden=(64, 64), loss="nll", epochs=60, random_state=0)
        m.fit(X, y)
        _, var = m.predict_dist(X)
        hi, lo = X[:, 1] > 0.5, X[:, 1] < -0.5
        assert var[hi].mean() > 2.0 * var[lo].mean()

    def test_mse_head_zero_variance(self):
        m = MLPRegressor(hidden=(8,), epochs=2).fit(self.X[:100], self.y[:100])
        _, var = m.predict_dist(self.X[:10])
        np.testing.assert_array_equal(var, 0.0)

    def test_dropout_runs(self):
        m = MLPRegressor(hidden=(16,), dropout=0.3, epochs=3).fit(self.X[:200], self.y[:200])
        assert np.isfinite(m.predict(self.X[:10])).all()

    def test_reproducible(self):
        kw = dict(hidden=(16,), epochs=3, random_state=11)
        p1 = MLPRegressor(**kw).fit(self.X[:200], self.y[:200]).predict(self.X[:5])
        p2 = MLPRegressor(**kw).fit(self.X[:200], self.y[:200]).predict(self.X[:5])
        np.testing.assert_array_equal(p1, p2)

    @pytest.mark.parametrize("bad", [{"activation": "sigmoid"}, {"loss": "mae"}, {"dropout": 1.0}])
    def test_invalid_params_raise(self, bad):
        with pytest.raises(ValueError):
            MLPRegressor(**bad)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MLPRegressor().predict(np.zeros((2, 3)))

    @pytest.mark.parametrize("activation", ["relu", "tanh", "elu"])
    def test_all_activations_learn(self, activation):
        m = MLPRegressor(hidden=(32,), activation=activation, epochs=15, random_state=0)
        m.fit(self.X[:800], self.y[:800])
        mae = np.mean(np.abs(m.predict(self.X[800:]) - self.y[800:]))
        baseline = np.mean(np.abs(self.y[800:] - self.y[:800].mean()))
        assert mae < 0.8 * baseline


class TestRidge:
    def test_exact_on_linear_data(self):
        rng = np.random.default_rng(0)
        X = rng.normal(0, 1, (200, 3))
        y = X @ np.array([1.0, -2.0, 0.5]) + 3.0
        m = RidgeRegression(alpha=1e-9).fit(X, y)
        np.testing.assert_allclose(m.predict(X), y, atol=1e-6)
        np.testing.assert_allclose(m.coef_, [1.0, -2.0, 0.5], atol=1e-6)

    def test_ridge_shrinks_coefficients(self):
        rng = np.random.default_rng(0)
        X = rng.normal(0, 1, (50, 2))
        y = X[:, 0]
        small = RidgeRegression(alpha=1e-9).fit(X, y)
        big = RidgeRegression(alpha=1e4).fit(X, y)
        assert np.abs(big.coef_).sum() < np.abs(small.coef_).sum()

    def test_negative_alpha_raises(self):
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-1.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RidgeRegression().predict(np.zeros((2, 2)))


class TestPipeline:
    def test_scaler_plus_model(self):
        rng = np.random.default_rng(0)
        X = rng.lognormal(4, 2, (400, 3))
        y = np.log10(X[:, 0])
        pipe = Pipeline([("s", Standardizer()), ("m", RidgeRegression(alpha=1e-6))])
        pipe.fit(X[:300], y[:300])
        mae = np.mean(np.abs(pipe.predict(X[300:]) - y[300:]))
        baseline = np.mean(np.abs(y[300:] - y[:300].mean()))
        assert mae < 0.2 * baseline

    def test_empty_pipeline_raises(self):
        with pytest.raises(ValueError):
            Pipeline([])


class TestDeepEnsemble:
    def setup_method(self):
        rng = np.random.default_rng(2)
        self.X = rng.normal(0, 1, (900, 4))
        self.y = self.X[:, 0] + 0.2 * rng.normal(0, 1, 900)

    def test_total_variance_identity(self):
        """Law of total variance: total = AU + EU, elementwise."""
        ens = DeepEnsemble(n_members=3, epochs=8, random_state=0).fit(self.X, self.y)
        d = ens.decompose(self.X[:50])
        np.testing.assert_allclose(d.total, d.aleatory + d.epistemic)

    def test_eu_larger_off_distribution(self):
        ens = DeepEnsemble(n_members=4, epochs=15, random_state=0).fit(self.X, self.y)
        d_in = ens.decompose(self.X[:100])
        d_out = ens.decompose(self.X[:100] + 15.0)  # far outside the training cloud
        assert d_out.epistemic.mean() > 3.0 * d_in.epistemic.mean()

    def test_au_tracks_noise_level(self):
        rng = np.random.default_rng(3)
        X = rng.normal(0, 1, (2000, 2))
        y = X[:, 0] + np.where(X[:, 1] > 0, 0.6, 0.05) * rng.normal(0, 1, 2000)
        members = [{"hidden": (64, 64), "learning_rate": 1e-3}] * 3
        ens = DeepEnsemble(members=members, epochs=60, random_state=0).fit(X, y)
        d = ens.decompose(X)
        assert d.aleatory[X[:, 1] > 0.5].mean() > 2.0 * d.aleatory[X[:, 1] < -0.5].mean()

    def test_member_count(self):
        ens = DeepEnsemble(n_members=3, epochs=2, random_state=0).fit(self.X[:100], self.y[:100])
        assert len(ens.models_) == 3

    def test_explicit_members(self):
        members = [{"hidden": (8,)}, {"hidden": (16,)}]
        ens = DeepEnsemble(members=members, epochs=2).fit(self.X[:100], self.y[:100])
        assert len(ens.models_) == 2

    def test_seed_diversity_mode(self):
        ens = DeepEnsemble(n_members=2, diversity="seed", epochs=2, random_state=0)
        ens.fit(self.X[:100], self.y[:100])
        assert len(ens.models_) == 2

    def test_invalid_diversity_raises(self):
        with pytest.raises(ValueError):
            DeepEnsemble(diversity="bootstrap")

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DeepEnsemble().predict(self.X[:2])

    def test_std_properties(self):
        ens = DeepEnsemble(n_members=2, epochs=2, random_state=0).fit(self.X[:100], self.y[:100])
        d = ens.decompose(self.X[:10])
        np.testing.assert_allclose(d.aleatory_std**2, d.aleatory)
        np.testing.assert_allclose(d.epistemic_std**2, d.epistemic)
