"""Tests for the litmus tests and the error-breakdown records.

Synthetic-generator tests verify each litmus test recovers *known* injected
quantities — the validation the paper itself could not perform on
production logs.
"""

import numpy as np
import pytest

from repro.data.duplicates import DuplicateSets, find_duplicate_sets
from repro.ml.ensemble import UncertaintyDecomposition
from repro.taxonomy import (
    ApplicationBound,
    application_bound,
    bessel_correction_factor,
    fit_t_distribution,
    noise_bound,
    ood_attribution,
)
from repro.taxonomy.errors import ErrorBreakdown
from repro.taxonomy.litmus_ood import shoulder_threshold
from repro.taxonomy.report import render_breakdown
from repro.taxonomy.tdist import pooled_residuals


def _synthetic_duplicates(n_sets=400, size=2, sigma=0.05, seed=0):
    """Feature rows identical within sets; y = set mean + N(0, σ)."""
    rng = np.random.default_rng(seed)
    rows, ys = [], []
    for s in range(n_sets):
        feat = rng.normal(0, 1, 3)
        mu = rng.uniform(1, 4)
        for _ in range(size):
            rows.append(feat)
            ys.append(mu + rng.normal(0, sigma))
    return np.asarray(rows), np.asarray(ys)


class TestBessel:
    def test_factor_values(self):
        assert bessel_correction_factor(2) == pytest.approx(np.sqrt(2.0))
        assert bessel_correction_factor(10) == pytest.approx(np.sqrt(10 / 9))

    def test_size_one_raises(self):
        with pytest.raises(ValueError):
            bessel_correction_factor(1)

    def test_correction_restores_sigma(self):
        """Pairs: raw residual std is σ/√2; corrected must be σ."""
        X, y = _synthetic_duplicates(n_sets=4000, size=2, sigma=0.05)
        dups = find_duplicate_sets(X)
        raw = pooled_residuals(y, dups.sets, correct=False)
        corrected = pooled_residuals(y, dups.sets, correct=True)
        assert np.std(raw) == pytest.approx(0.05 / np.sqrt(2), rel=0.05)
        assert np.std(corrected) == pytest.approx(0.05, rel=0.05)


class TestTFit:
    def test_recovers_normal_sigma(self):
        rng = np.random.default_rng(0)
        fit = fit_t_distribution(rng.normal(0, 0.03, 20000))
        assert fit.sigma == pytest.approx(0.03, rel=0.08)

    def test_band_math(self):
        fit = fit_t_distribution(np.random.default_rng(1).normal(0, 0.0241, 20000))
        # σ = 0.0241 dex ⇒ ±5.7 % at 68 % coverage (the paper's Theta value)
        assert fit.band(0.68) == pytest.approx(5.71, abs=0.8)
        assert fit.band(0.95) > fit.band(0.68)

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            fit_t_distribution(np.zeros(4))

    def test_heavy_tails_get_low_df(self):
        rng = np.random.default_rng(2)
        heavy = rng.standard_t(3, 20000) * 0.02
        normal = rng.normal(0, 0.02, 20000)
        assert fit_t_distribution(heavy).df < fit_t_distribution(normal).df


class TestApplicationBound:
    def test_recovers_injected_sigma(self):
        X, y = _synthetic_duplicates(n_sets=2000, size=3, sigma=0.04)
        bound = application_bound(X, y)
        # median |N(0, σ)| = 0.6745 σ
        assert bound.median_abs_dex == pytest.approx(0.6745 * 0.04, rel=0.08)

    def test_counts(self):
        X, y = _synthetic_duplicates(n_sets=10, size=4)
        bound = application_bound(X, y)
        assert bound.n_sets == 10
        assert bound.n_duplicates == 40
        assert bound.duplicate_fraction == pytest.approx(1.0)

    def test_no_duplicates_raises(self):
        X = np.arange(20.0).reshape(10, 2)
        with pytest.raises(ValueError, match="no duplicate sets"):
            application_bound(X, np.zeros(10))

    def test_model_app_error_clipped(self):
        X, y = _synthetic_duplicates(n_sets=50, size=2)
        bound = application_bound(X, y)
        assert bound.model_app_error_pct(bound.median_abs_pct - 1.0) == 0.0
        assert bound.model_app_error_pct(bound.median_abs_pct + 2.0) == pytest.approx(2.0)

    def test_reuses_provided_census(self):
        X, y = _synthetic_duplicates(n_sets=30, size=2)
        dups = find_duplicate_sets(X)
        bound = application_bound(X, y, dups=dups)
        assert bound.n_sets == dups.n_sets


class TestNoiseBound:
    def _dataset(self, sigma=0.03, n_sets=600, seed=0):
        rng = np.random.default_rng(seed)
        rows, ys, ts = [], [], []
        for s in range(n_sets):
            feat = rng.normal(0, 1, 2)
            mu = rng.uniform(1, 3)
            t0 = rng.uniform(0, 1e6)
            size = 2 if rng.random() < 0.7 else int(rng.integers(3, 7))
            for k in range(size):
                rows.append(feat)
                ys.append(mu + rng.normal(0, sigma))
                ts.append(t0 + rng.uniform(0, 0.5))
        return np.asarray(rows), np.asarray(ys), np.asarray(ts)

    def test_recovers_sigma_despite_small_sets(self):
        X, y, t = self._dataset(sigma=0.0241)
        dups = find_duplicate_sets(X)
        nb = noise_bound(y, dups, t)
        assert nb.sigma_dex == pytest.approx(0.0241, rel=0.12)
        assert nb.band_68_pct == pytest.approx(5.71, rel=0.15)

    def test_set_size_statistics(self):
        X, y, t = self._dataset()
        nb = noise_bound(y, find_duplicate_sets(X), t)
        assert 0.55 < nb.set_size_share_2 < 0.85
        assert nb.set_size_share_le6 > 0.95

    def test_exclusion_mask(self):
        X, y, t = self._dataset(n_sets=100)
        dups = find_duplicate_sets(X)
        exclude = np.zeros(len(y), dtype=bool)
        exclude[:] = False
        nb_all = noise_bound(y, dups, t)
        exclude[: len(y) // 2] = True
        nb_half = noise_bound(y, dups, t, exclude=exclude)
        assert nb_half.n_concurrent_jobs < nb_all.n_concurrent_jobs

    def test_no_concurrent_raises(self):
        X = np.ones((4, 2))
        y = np.zeros(4)
        t = np.array([0.0, 1e5, 2e5, 3e5])  # same features, never concurrent
        with pytest.raises(ValueError, match="no concurrent"):
            noise_bound(y, find_duplicate_sets(X), t)


class TestOodAttribution:
    def _decomp(self, n=1000, n_ood=20, seed=0):
        rng = np.random.default_rng(seed)
        eu = np.abs(rng.normal(0.02, 0.005, n))
        eu[:n_ood] = rng.uniform(0.3, 0.5, n_ood)  # clear OoD cluster
        mean = np.zeros(n)
        y = rng.normal(0, 0.05, n)
        y[:n_ood] += rng.choice([-1, 1], n_ood) * 0.4  # OoD jobs badly predicted
        decomp = UncertaintyDecomposition(mean=mean, aleatory=np.full(n, 1e-4), epistemic=eu**2)
        return decomp, y

    def test_tags_planted_ood(self):
        decomp, y = self._decomp()
        ood = ood_attribution(decomp, y, quantile=0.98)
        assert ood.is_ood[:20].all()
        assert ood.ood_fraction == pytest.approx(0.02, abs=0.005)

    def test_error_share_enriched(self):
        """Paper: tagged jobs carry ~3x the average error."""
        decomp, y = self._decomp()
        ood = ood_attribution(decomp, y, quantile=0.98)
        assert ood.enrichment > 3.0
        assert ood.error_share > ood.ood_fraction

    def test_explicit_threshold(self):
        decomp, y = self._decomp()
        ood = ood_attribution(decomp, y, threshold=0.24)
        assert ood.threshold == 0.24
        assert ood.is_ood.sum() == 20

    def test_shoulder_threshold_quantile(self):
        eu = np.linspace(0, 1, 101)
        thr = shoulder_threshold(eu, np.ones(101), quantile=0.9)
        assert thr == pytest.approx(0.9)


class TestErrorBreakdown:
    def _breakdown(self):
        return ErrorBreakdown(
            platform="theta",
            baseline_error_pct=16.0,
            application_pct_of_total=20.0,
            system_pct_of_total=10.0,
            ood_pct_of_total=2.5,
            aleatory_pct_of_total=25.0,
            removed_by_tuning_pct_of_total=15.0,
            tuned_error_pct=13.0,
            application_bound_pct=11.0,
            system_bound_pct=9.0,
            noise_bound_pct=4.0,
        )

    def test_unexplained_complement(self):
        b = self._breakdown()
        assert b.unexplained_pct_of_total == pytest.approx(100 - 20 - 10 - 2.5 - 25)

    def test_segments_keys(self):
        assert set(self._breakdown().segments()) == {
            "application_modeling", "system_modeling", "out_of_distribution",
            "aleatory (contention+noise)", "unexplained",
        }

    def test_validate_rejects_nonsense(self):
        b = self._breakdown()
        b.application_pct_of_total = 400.0
        with pytest.raises(ValueError):
            b.validate()

    def test_render_contains_anchors(self):
        text = render_breakdown(self._breakdown())
        assert "theta" in text
        assert "application bound" in text
        assert "unexplained" in text
