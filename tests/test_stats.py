"""Tests for the stats subpackage (bootstrap, weighted quantiles, drift)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    DriftMonitor,
    ReferenceBinning,
    bootstrap_ci,
    bootstrap_median_ci,
    ks_statistic,
    population_stability_index,
    reference_bin_edges,
    weighted_median,
    weighted_quantile,
)


class TestBootstrap:
    def test_median_ci_brackets_truth(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 1.0, 2000)
        point, lo, hi = bootstrap_median_ci(x, n_boot=500)
        assert lo <= point <= hi
        assert lo < 5.0 < hi
        assert hi - lo < 0.3  # tight at n=2000

    def test_ci_width_shrinks_with_n(self):
        rng = np.random.default_rng(1)
        _, lo_s, hi_s = bootstrap_median_ci(rng.normal(0, 1, 100), n_boot=400)
        _, lo_l, hi_l = bootstrap_median_ci(rng.normal(0, 1, 10_000), n_boot=400)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_generic_statistic(self):
        rng = np.random.default_rng(2)
        x = rng.exponential(2.0, 1500)
        point, lo, hi = bootstrap_ci(x, lambda v: float(np.mean(v)), n_boot=400)
        assert lo < 2.0 < hi
        assert point == pytest.approx(x.mean())

    def test_deterministic_given_seed(self):
        x = np.arange(100.0)
        a = bootstrap_median_ci(x, n_boot=200, random_state=7)
        b = bootstrap_median_ci(x, n_boot=200, random_state=7)
        assert a == b

    def test_rejects_tiny_samples(self):
        with pytest.raises(ValueError):
            bootstrap_median_ci(np.array([1.0]))
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([1.0, 2.0]), np.mean, coverage=1.5)


class TestWeightedQuantile:
    def test_matches_numpy_for_equal_weights(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, 5000)
        w = np.ones_like(x)
        for q in (0.1, 0.5, 0.9):
            assert weighted_quantile(x, w, q) == pytest.approx(np.quantile(x, q), abs=0.01)

    def test_zero_weight_points_ignored(self):
        x = np.array([0.0, 1.0, 2.0, 100.0])
        w = np.array([1.0, 1.0, 1.0, 0.0])
        assert weighted_median(x, w) == pytest.approx(1.0, abs=0.35)

    def test_heavy_weight_dominates(self):
        x = np.array([0.0, 10.0])
        w = np.array([1.0, 99.0])
        assert weighted_median(x, w) == pytest.approx(10.0, abs=0.6)

    def test_vector_q(self):
        x = np.arange(100.0)
        w = np.ones(100)
        out = weighted_quantile(x, w, np.array([0.25, 0.75]))
        assert out.shape == (2,)
        assert out[0] < out[1]

    def test_input_validation(self):
        with pytest.raises(ValueError):
            weighted_quantile(np.array([1.0]), np.array([1.0, 2.0]), 0.5)
        with pytest.raises(ValueError):
            weighted_quantile(np.array([1.0]), np.array([-1.0]), 0.5)
        with pytest.raises(ValueError):
            weighted_quantile(np.array([1.0, 2.0]), np.array([0.0, 0.0]), 0.5)

    @settings(max_examples=25, deadline=None)
    @given(st.floats(0.01, 0.99))
    def test_monotone_in_q(self, q):
        rng = np.random.default_rng(3)
        x = rng.normal(0, 1, 300)
        w = rng.uniform(0.1, 2.0, 300)
        assert weighted_quantile(x, w, q) <= weighted_quantile(x, w, min(q + 0.01, 0.999))


class TestDrift:
    def test_psi_near_zero_for_same_distribution(self):
        rng = np.random.default_rng(0)
        ref = rng.normal(0, 1, 5000)
        cur = rng.normal(0, 1, 5000)
        assert population_stability_index(ref, cur) < 0.02

    def test_psi_large_for_shifted_distribution(self):
        rng = np.random.default_rng(1)
        ref = rng.normal(0, 1, 5000)
        cur = rng.normal(2.0, 1, 5000)
        assert population_stability_index(ref, cur) > 0.5

    def test_ks_bounds_and_extremes(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0, 1, 1000)
        assert ks_statistic(a, a) == 0.0
        assert ks_statistic(a, a + 100.0) == pytest.approx(1.0)

    def test_monitor_flags_only_shifted_columns(self):
        rng = np.random.default_rng(3)
        ref = rng.normal(0, 1, (3000, 4))
        cur = ref.copy()[:1500]
        cur[:, 2] += 3.0
        monitor = DriftMonitor().fit(ref, names=list("abcd"))
        report = monitor.score(cur)
        assert report.n_drifted == 1
        assert report.worst(1)[0][0] == "c"

    def test_monitor_validation(self):
        monitor = DriftMonitor()
        with pytest.raises(RuntimeError):
            monitor.score(np.zeros((5, 2)))
        monitor.fit(np.random.default_rng(0).normal(0, 1, (100, 2)))
        with pytest.raises(ValueError):
            monitor.score(np.zeros((5, 3)))

    def test_constant_reference_column_handled(self):
        ref = np.zeros((200, 1))
        cur = np.ones((100, 1))
        monitor = DriftMonitor().fit(ref)
        report = monitor.score(cur)
        assert np.isfinite(report.psi).all()
        assert report.psi[0] > 0.25

    # --- PR 5 degenerate-binning regression ---------------------------- #
    def test_constant_column_jitter_is_not_drift(self):
        # the bug: a constant reference collapses every decile edge to one
        # value, and pre-fix any current value differing by float noise
        # landed in the epsilon-floored "other" bin -> PSI ~ 27.6 (maximal
        # drift from a representation detail).  The documented fallback
        # widens the collapsed edge to a tolerance band.
        ref = np.full(200, 3.0)
        assert population_stability_index(ref, np.full(100, 3.0)) == 0.0
        jitter = np.full(100, 3.0 + 1e-12)
        assert population_stability_index(ref, jitter) < 0.1
        # genuinely moved mass still scores as maximal drift
        assert population_stability_index(ref, np.full(100, 4.0)) > 0.25
        assert population_stability_index(ref, np.full(100, 2.0)) > 0.25

    def test_constant_feature_in_monitor_self_score_is_zero(self):
        rng = np.random.default_rng(5)
        ref = rng.normal(0, 1, (300, 3))
        ref[:, 1] = 7.5  # constant feature (a never-used counter)
        monitor = DriftMonitor().fit(ref, names=list("abc"))
        report = monitor.score(ref)
        assert np.array_equal(report.psi, np.zeros(3))
        # jitter on just the constant column stays quiet
        cur = ref.copy()
        cur[:, 1] += 1e-11
        assert monitor.score(cur).n_drifted == 0

    def test_reference_bin_edges_fallback(self):
        edges = reference_bin_edges(np.full(50, 2.0))
        assert edges.shape == (2,)
        assert edges[0] < 2.0 < edges[1]
        with pytest.raises(ValueError):
            reference_bin_edges(np.zeros(3), n_bins=10)

    def test_reference_binning_matches_offline_psi_and_ks(self):
        rng = np.random.default_rng(6)
        ref = rng.normal(0, 1, (400, 5))
        ref[:, 3] = np.round(ref[:, 3])  # duplicate-heavy column
        ref[:, 4] = -1.25                # constant column
        cur = rng.normal(0.5, 1.4, (150, 5))
        cur[:, 4] = -1.25
        binning = ReferenceBinning(ref, names=list("abcde"))
        psi = binning.psi(cur)
        ks = binning.ks(cur)
        for j in range(5):
            assert psi[j] == population_stability_index(ref[:, j], cur[:, j])
            assert ks[j] == ks_statistic(ref[:, j], cur[:, j])

    def test_reference_binning_validation(self):
        rng = np.random.default_rng(7)
        ref = rng.normal(0, 1, (100, 2))
        with pytest.raises(ValueError):
            ReferenceBinning(ref[:, 0])  # 1-D
        with pytest.raises(ValueError):
            ReferenceBinning(ref, names=["only-one"])
        binning = ReferenceBinning(ref)
        with pytest.raises(ValueError):
            binning.psi(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            binning.psi(np.zeros((5, 3)))


# ---------------------------------------------------------------------- #
@pytest.mark.serve
class TestServeStatsRollup:
    """The serving counters' aggregation contract: every ServerStats
    field — ``abandoned`` included — must survive field-wise summing
    through GatewayStats and ClusterStats unchanged."""

    def _snap(self, **overrides):
        from repro.serve import ServerStats

        base = dict(
            requests=10, rows=10, batches=2, completed=8, size_flushes=1,
            deadline_flushes=1, manual_flushes=0, abandoned=0, cache_hits=3,
            cache_misses=7, cache_evictions=0, cache_invalidations=0,
            cache_entries=7, total_latency_s=0.5,
        )
        base.update(overrides)
        return ServerStats(**base)

    def test_sum_stats_carries_abandoned(self):
        from repro.serve.stats import sum_stats

        total = sum_stats([self._snap(abandoned=2), self._snap(abandoned=3)])
        assert total.abandoned == 5
        assert total.requests == 20
        assert "abandoned=5" in total.summary()

    def test_empty_sum_is_all_zero(self):
        from repro.serve.stats import sum_stats

        total = sum_stats([])
        assert total.abandoned == 0
        assert total.hit_rate == 0.0 and total.mean_latency_ms == 0.0

    def test_gateway_and_cluster_rollups_carry_abandoned(self):
        from repro.serve import ClusterStats, GatewayStats

        gw0 = GatewayStats(per_name={"a": self._snap(abandoned=1),
                                     "b": self._snap(abandoned=2)})
        gw1 = GatewayStats(per_name={"a": self._snap(abandoned=4)})
        assert gw0.total.abandoned == 3
        cluster = ClusterStats(per_shard={0: gw0, 1: gw1})
        assert cluster.total.abandoned == 7
        assert cluster.per_name["a"].abandoned == 5
        assert cluster.per_name["b"].abandoned == 2
        assert "abandoned=7" in cluster.total.summary()


# ---------------------------------------------------------------------- #
@pytest.mark.serve
class TestLatencyPercentiles:
    """The tail-accounting contract (PR 9): per-request latencies land in
    a bounded ring, surface as p50/p99/p999 on ServerStats, and survive
    the gateway/cluster roll-ups by concatenation + decimation — never by
    field-wise summing (a summed percentile is meaningless)."""

    def _snap(self, samples=(), **overrides):
        from repro.serve import ServerStats

        base = dict(
            requests=len(samples), rows=len(samples), batches=1,
            completed=len(samples), size_flushes=0, deadline_flushes=0,
            manual_flushes=0, abandoned=0, cache_hits=0, cache_misses=0,
            cache_evictions=0, cache_invalidations=0, cache_entries=0,
            total_latency_s=float(sum(samples)),
            latency_samples=tuple(samples),
        )
        base.update(overrides)
        return ServerStats(**base)

    def test_percentiles_match_numpy_and_order(self):
        samples = tuple(np.random.default_rng(0).uniform(0.001, 0.1, 500))
        snap = self._snap(samples)
        for q, attr in ((50, "p50_ms"), (99, "p99_ms"), (99.9, "p999_ms")):
            want = 1e3 * float(np.percentile(np.asarray(samples), q))
            assert getattr(snap, attr) == pytest.approx(want)
            assert snap.percentile_ms(q) == pytest.approx(want)
        assert snap.p50_ms <= snap.p99_ms <= snap.p999_ms

    def test_empty_samples_are_zero_and_silent_in_summary(self):
        snap = self._snap((), requests=5, completed=5, total_latency_s=0.1)
        assert snap.p50_ms == snap.p99_ms == snap.p999_ms == 0.0
        assert "p99" not in snap.summary()
        loud = self._snap((0.01, 0.02))
        assert "p50=" in loud.summary() and "p999=" in loud.summary()

    def test_sum_concatenates_samples_not_sums_them(self):
        from repro.serve.stats import sum_stats

        a = self._snap((0.001,) * 50)
        b = self._snap((0.1,) * 50)
        total = sum_stats([a, b])
        assert len(total.latency_samples) == 100
        assert sorted(total.latency_samples) == sorted(a.latency_samples
                                                       + b.latency_samples)
        # the merged p50 sits between the two pools — a field-wise sum
        # would have produced a nonsense 101ms "percentile"
        assert a.p50_ms < total.p50_ms < b.p50_ms

    def test_merged_samples_are_capped_by_decimation(self):
        from repro.serve.stats import _MERGED_SAMPLE_CAP, sum_stats

        shards = [self._snap(tuple(np.full(6000, 0.01 * (i + 1))))
                  for i in range(4)]
        total = sum_stats(shards)
        assert 0 < len(total.latency_samples) <= _MERGED_SAMPLE_CAP
        # decimation is a stride over the concatenation: every survivor
        # is a real observation and every shard stays represented
        assert set(total.latency_samples) <= {0.01, 0.02, 0.03, 0.04}
        assert len(set(total.latency_samples)) == 4

    def test_batcher_ring_is_bounded_and_feeds_service_stats(self):
        from repro.serve import MicroBatcher

        class _Echo:
            def predict(self, X):
                return np.asarray(X)[:, 0]

        batcher = MicroBatcher(_Echo(), max_batch=4, max_delay=0.001)
        try:
            tickets = [batcher.submit(np.array([float(i), 0.0]))
                       for i in range(64)]
            batcher.flush()
            for t in tickets:
                t.result(timeout=5.0)
            ring = batcher.latency_snapshot()
            assert 0 < len(ring) <= 2048
            assert all(s >= 0.0 for s in ring)
            assert batcher._latency_ring.maxlen == 2048
        finally:
            batcher.close()

    def test_cluster_rollup_carries_samples(self):
        from repro.serve import ClusterStats, GatewayStats

        gw0 = GatewayStats(per_name={"a": self._snap((0.01,) * 10)})
        gw1 = GatewayStats(per_name={"a": self._snap((0.03,) * 10)})
        cluster = ClusterStats(per_shard={0: gw0, 1: gw1})
        assert len(cluster.total.latency_samples) == 20
        assert cluster.total.p999_ms == pytest.approx(30.0)
        assert len(cluster.per_name["a"].latency_samples) == 20
