"""Tests for the asyncio network front door (``repro.serve.net``).

The edge adds transport, never arithmetic: every value a client reads
must be bit-identical (``np.array_equal``) to the in-process ticket's
result, responses leave each connection strictly in request order, and a
misbehaving peer — malformed JSON, truncated frames, absurd length
headers, mid-request disconnects, raw garbage — gets a coded wire error
or a clean close, never a hang and never a dead server.  Admission
control sheds with a structured ``OVERLOADED`` instead of queueing
unboundedly, and a shed request still occupies its FIFO slot.

The model is a deterministic linear stand-in (exact dot products), so
every expected value is computable to the bit without training.
"""

import socket
import struct
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import ModelRegistry, ServingGateway
from repro.serve.errors import CodedError, ErrorCode, code_of
from repro.serve.net import (
    MAX_FRAME_BYTES,
    AsyncServeServer,
    ServeClient,
    decode_payload,
    decode_value,
    encode_frame,
    encode_value,
    parse_request,
    recv_frame,
    request_frame,
)

pytestmark = [pytest.mark.serve, pytest.mark.net]

D = 5


class LinearModel:
    """Deterministic stand-in estimator: row-wise dot products, so the
    result is bit-identical no matter how rows are blocked into batches
    (a full-matrix ``@`` would pick a different BLAS summation path for
    different block shapes)."""

    def __init__(self, d: int = D):
        self.w = np.linspace(1.0, 2.0, d)
        self.w2 = np.linspace(0.5, 1.5, d)

    def predict(self, X):
        X = np.asarray(X, dtype=float)
        return np.array([float(np.dot(r, self.w)) for r in X])

    def predict_dist(self, X):
        X = np.asarray(X, dtype=float)
        mean = np.array([float(np.dot(r, self.w)) for r in X])
        var = np.array([float(np.dot(r**2, self.w2)) + 1.0 for r in X])
        return mean, var


def _rows(n, seed=0):
    return np.random.default_rng(seed).normal(0, 1, (n, D))


@pytest.fixture()
def model():
    return LinearModel()


@pytest.fixture()
def gateway(model):
    reg = ModelRegistry()
    reg.register("lin", model, promote=True)
    with ServingGateway(reg, max_batch=32, max_delay=0.002, cache_entries=1) as gw:
        yield gw


@pytest.fixture()
def server(gateway):
    with AsyncServeServer(gateway) as srv:
        yield srv


def _raw_conn(server, timeout=10.0):
    sock = socket.create_connection((server.host, server.port), timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


# ---------------------------------------------------------------------- #
class TestWireIdentity:
    def test_pipelined_stream_bit_identical(self, server, model):
        rows = _rows(200, seed=1)
        ref = model.predict(rows)
        with ServeClient(server.host, server.port) as client:
            for row in rows:
                client.send("lin", row)
            got = np.array(client.drain())
        assert np.array_equal(got, ref)

    def test_predict_dist_single_and_block(self, server, model):
        rows = _rows(40, seed=2)
        ref_m, ref_v = model.predict_dist(rows)
        with ServeClient(server.host, server.port) as client:
            mean, var = client.predict_dist("lin", rows[0])
            assert (mean, var) == (float(ref_m[0]), float(ref_v[0]))
            got_m, got_v = client.call("lin", rows, kind="predict_dist")
            assert np.array_equal(got_m, ref_m)
            assert np.array_equal(got_v, ref_v)

    def test_block_predict_bit_identical(self, server, model):
        rows = _rows(64, seed=3)
        with ServeClient(server.host, server.port) as client:
            got = client.predict("lin", rows)
        assert np.array_equal(got, model.predict(rows))

    def test_counters_balance(self, server):
        rows = _rows(20, seed=4)
        with ServeClient(server.host, server.port) as client:
            for row in rows:
                client.send("lin", row)
            client.drain()
        c = server.counters()
        assert c["requests"] == c["submitted"] == c["responses"] == len(rows)
        assert c["shed"] == 0 and c["wire_errors"] == 0
        assert c["connections"] == 1


# ---------------------------------------------------------------------- #
class TestFifo:
    def test_responses_in_request_order(self, server):
        """Raw frames out of one connection carry ascending request ids —
        the batcher's FIFO witness extends to the wire."""
        rows = _rows(100, seed=5)
        sock = _raw_conn(server)
        try:
            for i, row in enumerate(rows):
                sock.sendall(request_frame(1000 + i, "lin", row, "predict"))
            ids = []
            for _ in range(len(rows)):
                msg = recv_frame(sock)
                assert msg is not None and msg["ok"]
                ids.append(msg["id"])
        finally:
            sock.close()
        assert ids == [1000 + i for i in range(len(rows))]

    def test_interleaved_clients_stay_isolated(self, server, model):
        rows_a, rows_b = _rows(60, seed=6), _rows(60, seed=7)
        with ServeClient(server.host, server.port) as a, \
                ServeClient(server.host, server.port) as b:
            for ra, rb in zip(rows_a, rows_b):
                a.send("lin", ra)
                b.send("lin", rb)
            got_b = np.array(b.drain())
            got_a = np.array(a.drain())
        assert np.array_equal(got_a, model.predict(rows_a))
        assert np.array_equal(got_b, model.predict(rows_b))

    def test_error_responses_hold_their_fifo_slot(self, server, model):
        """A rejected request answers in sequence, not out of band."""
        rows = _rows(3, seed=8)
        sock = _raw_conn(server)
        try:
            sock.sendall(request_frame(0, "lin", rows[0], "predict"))
            sock.sendall(request_frame(1, "nope", rows[1], "predict"))
            sock.sendall(request_frame(2, "lin", rows[2], "predict"))
            msgs = [recv_frame(sock) for _ in range(3)]
        finally:
            sock.close()
        assert [m["id"] for m in msgs] == [0, 1, 2]
        assert [m["ok"] for m in msgs] == [True, False, True]
        assert msgs[1]["error"]["code"] == int(ErrorCode.UNKNOWN_MODEL)


# ---------------------------------------------------------------------- #
class TestRequestErrors:
    def test_unknown_model_conn_survives(self, server, model):
        row = _rows(1, seed=9)[0]
        with ServeClient(server.host, server.port) as client:
            with pytest.raises(CodedError) as err:
                client.predict("nope", row)
            assert err.value.code is ErrorCode.UNKNOWN_MODEL
            assert client.predict("lin", row) == float(model.predict(row[None, :])[0])

    @pytest.mark.parametrize(
        "msg",
        [
            {"id": 1, "name": "lin", "kind": "sing", "row": [0.0] * D},
            {"id": 1, "kind": "predict", "row": [0.0] * D},            # no name
            {"id": 1, "name": "", "row": [0.0] * D},                   # empty name
            {"id": 1, "name": "lin"},                                  # no row(s)
            {"id": 1, "name": "lin", "row": [0.0] * D, "rows": [[0.0] * D]},
            {"id": 1, "name": "lin", "row": [[0.0] * D]},              # 2-D "row"
            {"id": 1, "name": "lin", "rows": [0.0] * D},               # 1-D "rows"
            {"id": 1, "name": "lin", "row": ["x"] * D},                # non-numeric
            {"id": True, "name": "lin", "row": [0.0] * D},             # bool id
        ],
    )
    def test_invalid_request_coded_400_conn_survives(self, server, model, msg):
        row = _rows(1, seed=10)[0]
        sock = _raw_conn(server)
        try:
            sock.sendall(encode_frame(msg))
            reply = recv_frame(sock)
            assert reply is not None and not reply["ok"]
            assert reply["error"]["code"] == int(ErrorCode.MALFORMED_REQUEST)
            assert reply["error"]["retryable"] is False
            # the stream is still framed: a good request answers normally
            sock.sendall(request_frame(7, "lin", row, "predict"))
            good = recv_frame(sock)
            assert good["ok"] and good["id"] == 7
            assert good["value"] == float(model.predict(row[None, :])[0])
        finally:
            sock.close()

    def test_missing_id_answers_with_null_id(self, server):
        sock = _raw_conn(server)
        try:
            sock.sendall(encode_frame({"name": "lin", "row": [0.0] * D}))
            reply = recv_frame(sock)
            assert reply is not None and not reply["ok"]
            assert reply["id"] is None
            assert reply["error"]["code"] == int(ErrorCode.MALFORMED_REQUEST)
        finally:
            sock.close()


# ---------------------------------------------------------------------- #
class TestWireErrors:
    def _expect_error_then_close(self, sock, code=ErrorCode.MALFORMED_REQUEST):
        reply = recv_frame(sock)
        assert reply is not None and not reply["ok"]
        assert reply["error"]["code"] == int(code)
        assert recv_frame(sock) is None  # server closed after the reply
        return reply

    def test_malformed_json_coded_then_closed(self, server, model):
        sock = _raw_conn(server)
        try:
            payload = b"{not json!"
            sock.sendall(struct.pack(">I", len(payload)) + payload)
            self._expect_error_then_close(sock)
        finally:
            sock.close()
        # the server itself survives the bad peer
        row = _rows(1, seed=11)[0]
        with ServeClient(server.host, server.port) as client:
            assert client.predict("lin", row) == float(model.predict(row[None, :])[0])

    def test_non_object_payload_coded_then_closed(self, server):
        sock = _raw_conn(server)
        try:
            payload = b"[1,2,3]"
            sock.sendall(struct.pack(">I", len(payload)) + payload)
            self._expect_error_then_close(sock)
        finally:
            sock.close()

    def test_oversized_header_refused_before_allocation(self, server):
        sock = _raw_conn(server)
        try:
            sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            reply = self._expect_error_then_close(sock, ErrorCode.FRAME_TOO_LARGE)
            # the coded message names the limit and the knob to raise it
            assert str(MAX_FRAME_BYTES) in reply["error"]["detail"]
            assert "max_frame_bytes" in reply["error"]["detail"]
        finally:
            sock.close()
        assert server.counters()["wire_errors"] >= 1

    def test_binary_frame_refused_on_json_edge(self, server):
        """The shard transport's binary flag is not part of the public
        edge protocol — a flagged frame is a malformed request there."""
        from repro.serve.net import encode_binary_frame

        sock = _raw_conn(server)
        try:
            sock.sendall(encode_binary_frame(b"\x00" * 16))
            self._expect_error_then_close(sock)
        finally:
            sock.close()
        assert server.counters()["wire_errors"] >= 1

    def test_truncated_frame_is_a_clean_close(self, server):
        """A peer dying mid-frame reads as a disconnect — no error frame,
        no hang, nothing submitted."""
        sock = _raw_conn(server)
        try:
            sock.sendall(struct.pack(">I", 100) + b"only ten b")
            sock.shutdown(socket.SHUT_WR)
            assert recv_frame(sock) is None
        finally:
            sock.close()
        assert server.counters()["submitted"] == 0

    def test_disconnect_mid_burst_releases_budget(self, server, gateway):
        """A client that vanishes with requests in flight must not leak
        the admission budget."""
        rows = _rows(30, seed=12)
        sock = _raw_conn(server)
        for i, row in enumerate(rows):
            sock.sendall(request_frame(i, "lin", row, "predict"))
        sock.close()  # gone before any response
        gateway.flush()
        deadline = time.monotonic() + 10.0
        while server.counters()["in_flight"] > 0:
            assert time.monotonic() < deadline, "in-flight budget leaked"
            time.sleep(0.01)

    def test_garbage_storm_never_hangs_server(self, server, model):
        rng = np.random.default_rng(13)
        for _ in range(25):
            blob = rng.integers(0, 256, size=int(rng.integers(1, 64))).astype(
                np.uint8).tobytes()
            sock = _raw_conn(server, timeout=10.0)
            try:
                sock.sendall(blob)
                sock.shutdown(socket.SHUT_WR)
                # drain whatever the server answers until it closes; a
                # hang trips the socket timeout and fails the test
                while sock.recv(4096):
                    pass
            finally:
                sock.close()
        row = _rows(1, seed=14)[0]
        with ServeClient(server.host, server.port) as client:
            assert client.predict("lin", row) == float(model.predict(row[None, :])[0])


# ---------------------------------------------------------------------- #
class TestAdmissionControl:
    def _slow_gateway(self, model):
        reg = ModelRegistry()
        reg.register("lin", model, promote=True)
        # no size trigger, slow deadline flush: tickets stay in flight
        # long enough for an unthrottled burst to overrun any budget
        return ServingGateway(reg, max_batch=10_000, max_delay=0.25, cache_entries=1)

    def test_server_budget_sheds_overloaded(self, model):
        rows = _rows(50, seed=15)
        with self._slow_gateway(model) as gw:
            with AsyncServeServer(gw, max_in_flight=4) as srv:
                with ServeClient(srv.host, srv.port) as client:
                    for row in rows:
                        client.send("lin", row)
                    served, shed = [], 0
                    for i in range(len(rows)):
                        try:
                            served.append((i, client.recv()))
                        except CodedError as exc:
                            assert exc.code is ErrorCode.OVERLOADED
                            assert exc.code.retryable
                            shed += 1
                counters = srv.counters()
        assert shed > 0
        assert counters["shed"] == shed
        assert counters["submitted"] == len(served)
        assert len(served) + shed == len(rows)
        ref = model.predict(rows)
        for i, value in served:
            assert value == ref[i]  # non-shed answers stay bit-identical

    def test_per_connection_cap_protects_neighbours(self, model):
        rows = _rows(20, seed=16)
        with self._slow_gateway(model) as gw:
            with AsyncServeServer(
                gw, max_in_flight=1024, max_pending_per_conn=2
            ) as srv:
                with ServeClient(srv.host, srv.port) as hog, \
                        ServeClient(srv.host, srv.port) as neighbour:
                    for row in rows:
                        hog.send("lin", row)
                    neighbour.send("lin", rows[0])
                    outcomes = []
                    for _ in range(len(rows)):
                        try:
                            outcomes.append(("ok", hog.recv()))
                        except CodedError as exc:
                            outcomes.append(("shed", exc.code))
                    # the hog is capped...
                    assert sum(1 for kind, _ in outcomes if kind == "shed") > 0
                    assert all(
                        code is ErrorCode.OVERLOADED
                        for kind, code in outcomes if kind == "shed"
                    )
                    # ...and the neighbour still gets its exact answer
                    assert neighbour.recv() == float(model.predict(rows[0][None, :])[0])

    def test_constructor_rejects_empty_budgets(self, gateway):
        with pytest.raises(ValueError):
            AsyncServeServer(gateway, max_in_flight=0)
        with pytest.raises(ValueError):
            AsyncServeServer(gateway, max_pending_per_conn=0)


# ---------------------------------------------------------------------- #
class TestClientTimeout:
    """Regression: ``ServeClient.recv`` used to leak the raw
    ``socket.timeout`` when the server was slow — callers saw an uncoded
    exception and the retry plane could not classify it."""

    @pytest.fixture()
    def slow_server(self):
        """A stand-in server that answers each request only after being
        released — real frames, controllable delay."""
        from repro.serve.net.protocol import ok_response

        release = threading.Event()
        lst = socket.create_server(("127.0.0.1", 0))
        host, port = lst.getsockname()[:2]

        def serve():
            conn, _ = lst.accept()
            try:
                while True:
                    msg = recv_frame(conn)
                    if msg is None:
                        return
                    release.wait(timeout=30.0)
                    conn.sendall(ok_response(msg["id"], 7.5))
            except OSError:
                pass
            finally:
                conn.close()

        th = threading.Thread(target=serve, daemon=True)
        th.start()
        try:
            yield host, port, release
        finally:
            release.set()
            lst.close()
            th.join(timeout=10.0)

    def test_recv_timeout_is_coded_deadline_exceeded(self, slow_server):
        host, port, release = slow_server
        with ServeClient(host, port) as client:
            client.send("lin", np.zeros(D))
            with pytest.raises(CodedError) as err:
                client.recv(timeout=0.05)
            assert code_of(err.value) is ErrorCode.DEADLINE_EXCEEDED
            assert err.value.code.retryable  # the retry plane may resubmit
            # the request is still pending — a late response is not lost
            assert client.outstanding == 1
            release.set()
            assert client.recv(timeout=10.0) == 7.5
            assert client.outstanding == 0

    def test_per_call_override_restores_connection_default(self, slow_server):
        host, port, release = slow_server
        release.set()
        with ServeClient(host, port, timeout=9.0) as client:
            client.send("lin", np.zeros(D))
            assert client.recv(timeout=5.0) == 7.5
            assert client._sock.gettimeout() == 9.0


# ---------------------------------------------------------------------- #
class TestProtocolUnit:
    @given(st.binary(max_size=256))
    @settings(max_examples=200, deadline=None)
    def test_decode_payload_total(self, blob):
        """Any byte string either parses to a dict or raises the coded
        MALFORMED_REQUEST — never another exception type."""
        try:
            out = decode_payload(blob)
        except Exception as exc:
            assert code_of(exc) is ErrorCode.MALFORMED_REQUEST
        else:
            assert isinstance(out, dict)

    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=64),
            min_size=1, max_size=8,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_floats_round_trip_bit_identical(self, values):
        """JSON repr round-trips IEEE-754 doubles exactly — the invariant
        the wire's bit-identity guarantee rests on."""
        arr = np.asarray(values, dtype=float)
        frame = request_frame(0, "lin", arr, "predict")
        msg = decode_payload(frame[4:])
        _, _, _, decoded, single = parse_request(msg)
        assert single and np.array_equal(decoded, arr)

    def test_value_shapes_round_trip(self):
        rows = _rows(6, seed=17)
        m = LinearModel()
        cases = [
            ("predict", True, float(m.predict(rows)[0])),
            ("predict", False, m.predict(rows)),
            ("predict_dist", True, (1.5, 0.25)),
            ("predict_dist", False, m.predict_dist(rows)),
        ]
        for kind, single, value in cases:
            wire = encode_value(kind, single, value)
            back = decode_value(kind, single, wire)
            if kind == "predict" and not single:
                assert np.array_equal(back, value)
            elif kind == "predict_dist" and not single:
                assert np.array_equal(back[0], value[0])
                assert np.array_equal(back[1], value[1])
            else:
                assert back == value

    def test_parse_request_accepts_both_shapes(self):
        row = _rows(1, seed=18)[0]
        req_id, name, kind, arr, single = parse_request(
            decode_payload(request_frame(3, "lin", row, "predict_dist")[4:])
        )
        assert (req_id, name, kind, single) == (3, "lin", "predict_dist", True)
        assert np.array_equal(arr, row)
        block = _rows(4, seed=19)
        *_, arr2, single2 = parse_request(
            decode_payload(request_frame(4, "lin", block, "predict")[4:])
        )
        assert not single2 and np.array_equal(arr2, block)
