"""Tests for the simulator substrate: platform, iomodel, weather, contention, noise."""

import numpy as np
import pytest

from repro.config import PlatformConfig, WeatherConfig, theta_config
from repro.simulator.contention import BackgroundLoad, LoadTimeline, contention_dex
from repro.simulator.iomodel import ideal_log_throughput, ideal_throughput_mibps
from repro.simulator.noise import gaussian_mixture_noise, noise_dex, student_t_noise
from repro.simulator.platform import Platform
from repro.simulator.weather import Weather

SPAN = 3.0 * 365.25 * 86400


def _params(n=1, **over):
    base = dict(
        nprocs=np.full(n, 256.0),
        total_bytes=np.full(n, 1e12),
        read_frac=np.full(n, 0.5),
        xfer_read=np.full(n, 2.0**22),
        xfer_write=np.full(n, 2.0**22),
        shared_frac=np.zeros(n),
        files_per_proc=np.ones(n),
        shared_files=np.ones(n),
        meta_per_gib=np.full(n, 1.0),
        seq_frac=np.ones(n),
        aligned_frac=np.ones(n),
        collective_frac=np.zeros(n),
        fsync_per_gib=np.full(n, 0.01),
        sensitivity=np.ones(n),
        uses_mpiio=np.zeros(n, dtype=bool),
    )
    base.update({k: np.asarray(v, dtype=float) for k, v in over.items()})
    return base


class TestPlatform:
    def setup_method(self):
        self.p = Platform(PlatformConfig())

    def test_transfer_efficiency_half_at_latency_bytes(self):
        eff = self.p.transfer_efficiency(np.array([self.p.config.latency_bytes]))
        assert eff[0] == pytest.approx(0.5)

    def test_transfer_efficiency_monotone(self):
        xfer = np.logspace(3, 8, 20)
        eff = self.p.transfer_efficiency(xfer)
        assert np.all(np.diff(eff) > 0)
        assert np.all((eff > 0) & (eff < 1))

    def test_osts_used_shared_vs_fpp(self):
        fpp = self.p.osts_used(np.array([1000.0]), np.array([0.0]))
        shared = self.p.osts_used(np.array([1000.0]), np.array([1.0]))
        assert fpp[0] == self.p.config.n_ost       # capped at all OSTs
        assert shared[0] == self.p.config.stripe_width

    def test_ceiling_bounded_by_peak(self):
        osts = np.array([1.0, 8.0, 56.0])
        ceil = self.p.aggregate_ceiling(osts, read=True)
        assert np.all(ceil <= self.p.config.peak_read_mibps + 1e-9)
        assert np.all(np.diff(ceil) > 0)

    def test_demand_fraction_blend(self):
        d = self.p.demand_fraction(np.array([1000.0]), np.array([0.0]))
        assert d[0] == pytest.approx(1000.0 / self.p.config.peak_write_mibps)


class TestIoModel:
    def setup_method(self):
        self.p = Platform(PlatformConfig())

    def test_larger_transfers_faster(self):
        slow = ideal_throughput_mibps(self.p, _params(xfer_read=2.0**12, xfer_write=2.0**12))
        fast = ideal_throughput_mibps(self.p, _params(xfer_read=2.0**24, xfer_write=2.0**24))
        assert fast[0] > 2.0 * slow[0]

    def test_shared_writes_slower(self):
        fpp = ideal_throughput_mibps(self.p, _params(read_frac=0.0, shared_frac=0.0))
        shared = ideal_throughput_mibps(self.p, _params(read_frac=0.0, shared_frac=1.0))
        assert shared[0] < fpp[0]

    def test_metadata_heavy_slower(self):
        light = ideal_throughput_mibps(self.p, _params(meta_per_gib=0.1))
        heavy = ideal_throughput_mibps(self.p, _params(meta_per_gib=1000.0))
        assert heavy[0] < light[0]

    def test_random_access_slower(self):
        seq = ideal_throughput_mibps(self.p, _params(seq_frac=1.0))
        rand = ideal_throughput_mibps(self.p, _params(seq_frac=0.0))
        assert rand[0] < seq[0]

    def test_collective_rescues_small_transfers(self):
        small = _params(xfer_write=2.0**12, read_frac=0.0)
        coll = _params(xfer_write=2.0**12, read_frac=0.0, collective_frac=1.0)
        assert ideal_throughput_mibps(self.p, coll)[0] > 3.0 * ideal_throughput_mibps(self.p, small)[0]

    def test_rate_invariant_to_total_bytes(self):
        """Throughput is a rate: problem size cancels (meta scales with GiB)."""
        a = ideal_throughput_mibps(self.p, _params(total_bytes=1e11))
        b = ideal_throughput_mibps(self.p, _params(total_bytes=1e13))
        assert a[0] == pytest.approx(b[0], rel=1e-6)

    def test_more_procs_not_slower_fpp(self):
        few = ideal_throughput_mibps(self.p, _params(nprocs=4.0))
        many = ideal_throughput_mibps(self.p, _params(nprocs=1024.0))
        assert many[0] > few[0]

    def test_log_matches_linear(self):
        params = _params()
        np.testing.assert_allclose(
            ideal_log_throughput(self.p, params),
            np.log10(ideal_throughput_mibps(self.p, params)),
        )


class TestWeather:
    def test_reproducible(self):
        w1 = Weather(WeatherConfig(), SPAN, rng=5)
        w2 = Weather(WeatherConfig(), SPAN, rng=5)
        t = np.linspace(0, SPAN, 100)
        np.testing.assert_array_equal(w1.log_factor(t), w2.log_factor(t))

    def test_degradation_nonnegative(self):
        w = Weather(WeatherConfig(), SPAN, rng=0)
        t = np.linspace(0, SPAN, 2000)
        assert np.all(w.degradation(t) >= 0)

    def test_fullness_bounds(self):
        w = Weather(WeatherConfig(), SPAN, rng=0)
        f = w.fullness(np.linspace(0, SPAN, 1000))
        assert np.all((f >= 0.02) & (f <= 0.97))

    def test_describe_keys(self):
        d = Weather(WeatherConfig(), SPAN, rng=0).describe()
        assert {"n_degradations", "n_epochs", "fg_std_dex"} <= set(d)

    def test_deployment_epoch_creates_shift(self):
        cfg = WeatherConfig(epoch_count=1, degradations_per_year=0.0, ou_sigma=1e-9,
                            seasonal_amplitude=0.0, aging_slope=0.0, fullness_penalty=0.0)
        w = Weather(cfg, SPAN, rng=1, deployment_epoch_at=0.5)
        before = w.log_factor(np.array([0.25 * SPAN]))
        after = w.log_factor(np.array([0.75 * SPAN]))
        assert abs(after[0] - before[0]) > 0.01

    def test_no_deployment_epoch(self):
        w = Weather(WeatherConfig(epoch_count=1), SPAN, rng=1, deployment_epoch_at=None)
        assert w._epoch_offsets.size == 1

    def test_weather_magnitude_sane(self):
        w = Weather(WeatherConfig(), SPAN, rng=3)
        fg = w.log_factor(np.linspace(0, SPAN, 4000))
        assert 0.01 < np.std(fg) < 0.3


class TestLoadTimeline:
    def test_single_job_load(self):
        tl = LoadTimeline(np.array([10.0]), np.array([20.0]), np.array([0.5]))
        assert tl.load_at(np.array([15.0]))[0] == pytest.approx(0.5)
        assert tl.load_at(np.array([25.0]))[0] == pytest.approx(0.0)
        assert tl.load_at(np.array([5.0]))[0] == pytest.approx(0.0)

    def test_overlap_sums(self):
        tl = LoadTimeline(np.array([0.0, 5.0]), np.array([10.0, 15.0]), np.array([0.3, 0.4]))
        assert tl.load_at(np.array([7.0]))[0] == pytest.approx(0.7)

    def test_mean_load_exact_integral(self):
        tl = LoadTimeline(np.array([0.0]), np.array([10.0]), np.array([1.0]))
        # window [5, 15]: half covered -> mean 0.5
        assert tl.mean_load(np.array([5.0]), np.array([15.0]))[0] == pytest.approx(0.5)

    def test_negative_duration_raises(self):
        with pytest.raises(ValueError):
            LoadTimeline(np.array([10.0]), np.array([5.0]), np.array([1.0]))

    def test_mean_load_inside_constant(self):
        tl = LoadTimeline(np.array([0.0]), np.array([100.0]), np.array([0.25]))
        got = tl.mean_load(np.array([10.0]), np.array([20.0]))[0]
        assert got == pytest.approx(0.25)


class TestBackgroundLoad:
    def test_bounds(self):
        bg = BackgroundLoad(SPAN, rng=0)
        load = bg.load_at(np.linspace(0, SPAN, 5000))
        assert np.all((load >= 0.0) & (load <= 2.5))

    def test_mean_near_configured(self):
        bg = BackgroundLoad(SPAN, rng=0, mean=0.42)
        load = bg.load_at(np.linspace(0, SPAN, 20000))
        assert abs(load.mean() - 0.42) < 0.15

    def test_mean_load_window(self):
        bg = BackgroundLoad(SPAN, rng=0)
        m = bg.mean_load(np.array([0.0]), np.array([86400.0]))
        assert np.isfinite(m[0]) and m[0] >= 0


class TestContention:
    def test_nonpositive_and_capped(self):
        cfg = PlatformConfig()
        dex, _ = contention_dex(cfg, np.full(1000, 5.0), np.full(1000, 3.0), rng=0)
        assert np.all(dex <= 0) and np.all(dex >= -0.6)

    def test_zero_load_zero_contention(self):
        cfg = PlatformConfig()
        dex, _ = contention_dex(cfg, np.zeros(10), np.ones(10), rng=0)
        np.testing.assert_allclose(dex, 0.0)

    def test_sensitivity_scales(self):
        cfg = PlatformConfig()
        lo, _ = contention_dex(cfg, np.full(4000, 0.5), np.full(4000, 0.5), rng=0)
        hi, _ = contention_dex(cfg, np.full(4000, 0.5), np.full(4000, 2.0), rng=0)
        assert hi.mean() < lo.mean()  # more negative

    def test_placement_mean_one(self):
        cfg = PlatformConfig()
        _, placement = contention_dex(cfg, np.ones(20000), np.ones(20000), rng=0)
        assert placement.mean() == pytest.approx(1.0, rel=0.05)


class TestNoise:
    def test_gaussian_sigma(self):
        x = gaussian_mixture_noise(0, 50000, sigma=0.02, heavy_frac=0.0)
        assert np.std(x) == pytest.approx(0.02, rel=0.05)

    def test_heavy_tail_increases_kurtosis(self):
        clean = gaussian_mixture_noise(0, 50000, 0.02, heavy_frac=0.0)
        heavy = gaussian_mixture_noise(0, 50000, 0.02, heavy_frac=0.05)
        k = lambda v: np.mean((v - v.mean()) ** 4) / np.var(v) ** 2
        assert k(heavy) > k(clean) + 1.0

    def test_student_t_variance(self):
        x = student_t_noise(0, 100000, sigma=0.05, df=5.0)
        assert np.std(x) == pytest.approx(0.05, rel=0.1)

    def test_student_t_low_df_raises(self):
        with pytest.raises(ValueError):
            student_t_noise(0, 10, 0.1, df=2.0)

    def test_noise_dex_uses_platform(self):
        cfg = theta_config().platform
        x = noise_dex(cfg, 0, 20000)
        assert np.std(x) == pytest.approx(cfg.noise_sigma, rel=0.35)
