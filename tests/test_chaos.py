"""Chaos/scale harness + SLO autoscaler tests.

Three layers, mirroring the module split:

* :class:`TestSLOAutoscaler` — the AIMD controller against a scripted
  stub cluster and a hand-cranked clock: breach→grow, sustained
  calm→shrink, cooldowns, bounds, failure events, policy wiring.
* hypothesis properties — the autoscaler trajectory is a pure function
  of the (stats, clock) schedule: identical replays, bounds never
  violated.
* :class:`TestChaosSoakFast` / :class:`TestClusterScaling` — the real
  thing in fast mode: a kill storm under live promote/rollback churn
  with ≥5 kills, bit-identity witnessed against direct predicts, zero
  client-visible transient errors, poison floods failing fast, drift
  alerts firing, and `scale_to` growing/shrinking a live fleet without
  losing a request.
"""

import json
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.serve import ErrorCode, ModelRegistry, ShardedServingCluster
from repro.serve.autoscale import ScalingDecision, SLOAutoscaler
from repro.serve.chaos import (
    ChaosConfig,
    ChaosLinearModel,
    chaos_model,
    run_chaos_soak,
    zipf_weights,
)
from repro.serve.stats import ServerStats

pytestmark = [pytest.mark.serve, pytest.mark.chaos]


# ---------------------------------------------------------------------- #
# scripted scaffolding
# ---------------------------------------------------------------------- #
class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _total(completed: int, samples: tuple,
           total_latency_s: float | None = None) -> SimpleNamespace:
    if total_latency_s is None:
        total_latency_s = float(sum(samples))
    return SimpleNamespace(total=ServerStats(
        requests=completed, rows=completed, batches=1, completed=completed,
        size_flushes=0, deadline_flushes=0, manual_flushes=0, abandoned=0,
        cache_hits=0, cache_misses=0, cache_evictions=0,
        cache_invalidations=0, cache_entries=0,
        total_latency_s=total_latency_s, latency_samples=tuple(samples),
    ))


class ScriptedCluster:
    """Stub the autoscaler steers: scripted stats, recorded scale calls."""

    def __init__(self, n_shards: int = 2, fail_scale: bool = False):
        self._n = n_shards
        self.fail_scale = fail_scale
        self.calls: list[int] = []
        self._completed = 0
        self._samples: tuple = ()

    @property
    def n_shards(self) -> int:
        return self._n

    def set_window(self, completed_total: int, latency_s: float, n: int = 8) -> None:
        self._completed = completed_total
        self._samples = (latency_s,) * n

    def stats(self) -> SimpleNamespace:
        return _total(self._completed, self._samples)

    def scale_to(self, n: int) -> int:
        if self.fail_scale:
            raise RuntimeError("spawn refused")
        self.calls.append(n)
        self._n = n
        return n


def _autoscaler(stub, clock, **kw) -> SLOAutoscaler:
    kw.setdefault("target_p99_ms", 50.0)
    kw.setdefault("min_shards", 1)
    kw.setdefault("max_shards", 6)
    kw.setdefault("calm_windows", 3)
    kw.setdefault("up_cooldown_s", 0.0)
    kw.setdefault("down_cooldown_s", 0.0)
    kw.setdefault("clock", clock)
    return SLOAutoscaler(stub, **kw)


# ---------------------------------------------------------------------- #
class TestSLOAutoscaler:
    def test_first_step_only_baselines(self):
        stub = ScriptedCluster()
        a = _autoscaler(stub, FakeClock())
        stub.set_window(10, 0.2)
        assert a.step() is None
        assert stub.calls == []

    def test_breach_scales_up_with_coded_event(self):
        stub = ScriptedCluster(n_shards=2)
        clock = FakeClock()
        a = _autoscaler(stub, clock)
        stub.set_window(10, 0.2)  # p99 = 200ms > 50ms SLO
        a.step()
        clock.advance(1.0)
        stub.set_window(20, 0.2)
        decision = a.step()
        assert decision.direction == "up"
        assert decision.n_shards == 3
        assert stub.calls == [3]
        assert a.scale_ups == 1
        event = a.events[-1]
        assert event.action == "scale-up"
        assert event.code is ErrorCode.SLO_BREACH
        assert event.value == 3.0
        assert event.rule == "slo-autoscaler"

    def test_calm_needs_a_streak_then_shrinks_multiplicatively(self):
        stub = ScriptedCluster(n_shards=4)
        clock = FakeClock()
        a = _autoscaler(stub, clock)
        stub.set_window(10, 0.001)  # p99 = 1ms << 15ms low watermark
        a.step()
        directions = []
        for i in range(3):
            clock.advance(1.0)
            stub.set_window(20 + 10 * i, 0.001)
            directions.append(a.step().direction)
        assert directions == ["hold", "hold", "down"]
        assert stub.calls == [2]  # round(4 * 0.5)
        assert a.scale_downs == 1
        assert a.events[-1].action == "scale-down"
        assert a.events[-1].code is None

    def test_mid_band_resets_both_streaks(self):
        stub = ScriptedCluster(n_shards=4)
        clock = FakeClock()
        a = _autoscaler(stub, clock)
        stub.set_window(10, 0.001)
        a.step()
        for i, lat in enumerate((0.001, 0.001, 0.03, 0.001, 0.001)):
            clock.advance(1.0)
            stub.set_window(20 + 10 * i, lat)  # 30ms = mid-band: resets
            a.step()
        assert stub.calls == []  # the calm streak never reaches 3

    def test_zero_completion_window_holds_without_evidence(self):
        stub = ScriptedCluster(n_shards=2)
        clock = FakeClock()
        a = _autoscaler(stub, clock)
        stub.set_window(10, 0.001)
        a.step()
        clock.advance(1.0)
        decision = a.step()  # counters unchanged: idle window
        assert decision.direction == "hold"
        assert decision.window_completed == 0
        assert decision.observed_ms == 0.0
        assert stub.calls == []

    def test_up_cooldown_blocks_consecutive_growth(self):
        stub = ScriptedCluster(n_shards=2)
        clock = FakeClock()
        a = _autoscaler(stub, clock, up_cooldown_s=5.0)
        stub.set_window(10, 0.2)
        a.step()
        clock.advance(1.0)
        stub.set_window(20, 0.2)
        assert a.step().direction == "up"
        clock.advance(1.0)  # inside the 5s cooldown
        stub.set_window(30, 0.2)
        assert a.step().direction == "hold"
        clock.advance(10.0)  # cooldown lapsed
        stub.set_window(40, 0.2)
        assert a.step().direction == "up"
        assert stub.calls == [3, 4]

    def test_bounds_clamp_both_directions(self):
        stub = ScriptedCluster(n_shards=6)
        clock = FakeClock()
        a = _autoscaler(stub, clock)
        stub.set_window(10, 0.2)
        a.step()
        clock.advance(1.0)
        stub.set_window(20, 0.2)
        assert a.step().direction == "hold"  # already at max_shards
        assert stub.calls == []
        stub2 = ScriptedCluster(n_shards=1)
        a2 = _autoscaler(stub2, clock, calm_windows=1)
        stub2.set_window(10, 0.001)
        a2.step()
        clock.advance(1.0)
        stub2.set_window(20, 0.001)
        assert a2.step().direction == "hold"  # already at min_shards
        assert stub2.calls == []

    def test_scale_failure_emits_autoscale_failed_and_holds(self):
        stub = ScriptedCluster(n_shards=2, fail_scale=True)
        clock = FakeClock()
        recorded = []
        policy = SimpleNamespace(record=recorded.append)
        a = _autoscaler(stub, clock, policy=policy)
        stub.set_window(10, 0.2)
        a.step()
        clock.advance(1.0)
        stub.set_window(20, 0.2)
        decision = a.step()
        assert decision.direction == "hold"
        assert decision.n_shards == 2
        assert a.scale_failures == 1
        event = a.events[-1]
        assert event.action == "scale-failed"
        assert event.code is ErrorCode.AUTOSCALE_FAILED
        assert recorded == [event]  # policy audit trail got the same event
        wire = event.to_wire()
        assert wire["error"]["code"] == 515

    def test_mean_latency_fallback_without_samples(self):
        """A fleet whose snapshots predate the ring still autoscales —
        the windowed mean stands in for p99."""
        stub = ScriptedCluster(n_shards=2)
        clock = FakeClock()
        a = _autoscaler(stub, clock)
        stub._completed = 10
        stub.stats = lambda: _total(
            stub._completed, (), total_latency_s=stub._completed * 0.2)
        a.step()
        clock.advance(1.0)
        stub._completed = 20
        decision = a.step()  # window mean = 200ms > SLO
        assert decision.direction == "up"
        assert decision.observed_ms == pytest.approx(200.0)

    def test_validation(self):
        stub = ScriptedCluster()
        with pytest.raises(ValueError):
            SLOAutoscaler(stub, target_p99_ms=0.0)
        with pytest.raises(ValueError):
            SLOAutoscaler(stub, min_shards=4, max_shards=2)
        with pytest.raises(ValueError):
            SLOAutoscaler(stub, shrink_factor=1.0)
        with pytest.raises(ValueError):
            SLOAutoscaler(stub, low_watermark=0.0)
        with pytest.raises(ValueError):
            SLOAutoscaler(stub, grow_step=0)


# ---------------------------------------------------------------------- #
class TestAutoscalerProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        script=st.lists(
            st.tuples(st.integers(0, 40), st.floats(0.0005, 0.5)),
            min_size=2, max_size=25,
        ),
        start=st.integers(1, 6),
    )
    def test_trajectory_is_a_pure_function_of_the_schedule(self, script, start):
        """Same stats schedule + same clock → identical decision history,
        identical events, identical scale calls."""

        def run():
            stub = ScriptedCluster(n_shards=start)
            clock = FakeClock()
            a = _autoscaler(stub, clock, calm_windows=2)
            cum = 0
            for delta, lat in script:
                cum += delta
                stub.set_window(cum, lat)
                a.step()
                clock.advance(1.0)
            return (
                [(d.at, d.n_shards, d.window_completed, d.observed_ms, d.direction)
                 for d in a.history],
                [(e.at, e.action, e.value) for e in a.events],
                stub.calls,
            )

        assert run() == run()

    @settings(max_examples=40, deadline=None)
    @given(
        script=st.lists(
            st.tuples(st.integers(0, 40), st.floats(0.0005, 0.5)),
            min_size=2, max_size=25,
        ),
        start=st.integers(1, 6),
    )
    def test_fleet_width_never_leaves_bounds(self, script, start):
        stub = ScriptedCluster(n_shards=start)
        clock = FakeClock()
        a = _autoscaler(stub, clock, calm_windows=1, min_shards=1, max_shards=6)
        cum = 0
        for delta, lat in script:
            cum += delta
            stub.set_window(cum, lat)
            decision = a.step()
            clock.advance(1.0)
            if decision is not None:
                assert 1 <= decision.n_shards <= 6
            assert 1 <= stub.n_shards <= 6
        for n in stub.calls:
            assert 1 <= n <= 6

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 200), st.floats(0.5, 2.0))
    def test_zipf_weights_are_a_distribution(self, n, s):
        w = zipf_weights(n, s)
        assert w.shape == (n,)
        assert np.all(w > 0)
        assert np.all(np.diff(w) <= 0)  # rank-ordered skew
        assert float(w.sum()) == pytest.approx(1.0)


# ---------------------------------------------------------------------- #
class TestChaosModel:
    def test_batch_shape_independence_is_exact(self):
        """The witness contract: one row scored alone, inside a small
        batch, and inside a big batch produces the identical float."""
        model = chaos_model(0, 3, 2, 12)
        rng = np.random.default_rng(5)
        rows = rng.normal(0, 1, (64, 12))
        alone = np.array([model.predict(r[None, :])[0] for r in rows])
        batched = model.predict(rows)
        halves = np.concatenate([model.predict(rows[:13]), model.predict(rows[13:])])
        assert np.array_equal(alone, batched)
        assert np.array_equal(alone, halves)

    def test_wrong_width_raises_value_error(self):
        model = ChaosLinearModel(np.ones(4), 0.0)
        with pytest.raises(ValueError):
            model.predict(np.ones((2, 7)))


# ---------------------------------------------------------------------- #
@pytest.mark.shard
@pytest.mark.faults
class TestChaosSoakFast:
    def test_kill_storm_soak_survives_clean(self):
        """The acceptance gate, fast mode: ≥5 consecutive kills under
        live promote/rollback churn and poison floods — zero
        client-visible errors, every survivor bit-identical to a direct
        predict, tails recorded from both the harness clock and the
        fleet's bounded latency rings."""
        result = run_chaos_soak(ChaosConfig())
        assert result["completed"] == result["n_requests"] == 320
        assert result["client_errors"] == 0, result["client_error_codes"]
        assert result["mismatches"] == 0
        assert result["kills"] >= 5
        assert result["respawns"] >= 1
        assert result["poison_sent"] > 0
        assert result["poison_failed_fast"] == result["poison_sent"]
        assert result["churns"] > 0
        assert result["drift_alerts"] >= 1
        assert result["p99_ms"] >= result["p50_ms"] > 0.0
        assert result["p999_ms"] >= result["p99_ms"]
        assert result["fleet_p99_ms"] >= result["fleet_p50_ms"] > 0.0
        assert 1 <= result["n_shards_final"] <= 4
        assert result["scale_failures"] == 0

    def test_replicated_route_soak_also_clean(self):
        result = run_chaos_soak(ChaosConfig(
            route="replicated", n_requests=160, n_kills=3, drift_names=0,
            autoscale=False, seed=3,
        ))
        assert result["client_errors"] == 0
        assert result["mismatches"] == 0
        assert result["kills"] == 3
        assert result["completed"] == 160


# ---------------------------------------------------------------------- #
@pytest.mark.shard
class TestClusterScaling:
    def test_scale_to_grows_and_shrinks_live_fleet_bit_identically(self):
        reg = ModelRegistry()
        model = chaos_model(0, 0, 1, 8)
        rng = np.random.default_rng(11)
        rows = rng.normal(0, 1, (30, 8))
        with ShardedServingCluster(
            reg, n_shards=1, max_batch=8, max_delay=0.005
        ) as cluster:
            cluster.register("m", model, promote=True)

            def check(n: int) -> None:
                got = [cluster.predict("m", r, timeout=20.0) for r in rows]
                want = [float(r @ model.w) + model.b for r in rows]
                assert got == want
                assert cluster.n_shards == n
                assert sorted(cluster.live_shards()) == list(range(n))

            check(1)
            assert cluster.scale_to(3) == 3
            check(3)
            assert cluster.scale_to(1) == 1
            check(1)
            with pytest.raises(ValueError):
                cluster.scale_to(0)

    def test_scale_up_reuses_cached_snapshot_bytes(self):
        reg = ModelRegistry()
        with ShardedServingCluster(reg, n_shards=1) as cluster:
            cluster.register("m", chaos_model(0, 0, 1, 4), promote=True)
            calls = {"n": 0}
            orig = reg.snapshot

            def counting():
                calls["n"] += 1
                return orig()

            reg.snapshot = counting
            try:
                cluster.scale_to(4)  # one wave: 3 new workers
            finally:
                del reg.snapshot
            assert calls["n"] == 1
            assert sorted(cluster.live_shards()) == [0, 1, 2, 3]


# ---------------------------------------------------------------------- #
class TestCLI:
    def test_chaos_bench_records_trajectory_entry(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main([
            "chaos-bench", "--names", "6", "--versions-per-name", "3",
            "--requests", "96", "--kills", "2", "--source", "synthetic",
        ])
        assert rc == 0
        trajectory = json.loads(
            (tmp_path / "benchmarks" / "results" / "BENCH_chaos.json").read_text()
        )
        assert len(trajectory) == 1
        entry = trajectory[0]["chaos"]
        assert entry["n_versions"] == 18
        assert entry["client_errors"] == 0
        assert entry["mismatches"] == 0
        assert "p999_ms" in entry
