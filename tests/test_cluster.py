"""Tests for the clustering subpackage (k-means, DBSCAN, hierarchy, reports)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    DBSCAN,
    AgglomerativeClustering,
    ClusterReport,
    KMeans,
    cluster_workload,
    davies_bouldin_index,
    silhouette_score,
)


def _blobs(n_per=80, centers=((0, 0), (8, 8), (-8, 8)), spread=0.6, seed=0):
    rng = np.random.default_rng(seed)
    X = np.concatenate(
        [rng.normal(c, spread, (n_per, len(c))) for c in centers]
    )
    truth = np.repeat(np.arange(len(centers)), n_per)
    return X, truth


def _agreement(labels, truth):
    """Best-case label agreement via majority vote per found cluster."""
    correct = 0
    for c in np.unique(labels):
        if c < 0:
            continue
        members = truth[labels == c]
        correct += np.bincount(members).max()
    return correct / truth.size


class TestKMeans:
    def test_recovers_well_separated_blobs(self):
        X, truth = _blobs()
        km = KMeans(n_clusters=3, random_state=0).fit(X)
        assert _agreement(km.labels_, truth) > 0.97

    def test_inertia_decreases_with_k(self):
        X, _ = _blobs()
        i2 = KMeans(n_clusters=2, random_state=0).fit(X).inertia_
        i6 = KMeans(n_clusters=6, random_state=0).fit(X).inertia_
        assert i6 < i2

    def test_predict_assigns_nearest_center(self):
        X, _ = _blobs()
        km = KMeans(n_clusters=3, random_state=0).fit(X)
        lab = km.predict(np.array([[0.0, 0.0], [8.0, 8.0]]))
        assert lab[0] != lab[1]

    def test_duplicate_rows_share_a_cluster(self):
        X = np.vstack([np.tile([1.0, 2.0], (30, 1)), np.tile([50.0, 50.0], (30, 1))])
        km = KMeans(n_clusters=2, random_state=0).fit(X)
        assert len(set(km.labels_[:30])) == 1
        assert len(set(km.labels_[30:])) == 1

    def test_k1_center_is_mean(self):
        X, _ = _blobs()
        km = KMeans(n_clusters=1, random_state=0).fit(X)
        np.testing.assert_allclose(km.centers_[0], X.mean(axis=0), atol=1e-8)

    def test_deterministic_given_seed(self):
        X, _ = _blobs()
        l1 = KMeans(n_clusters=3, random_state=4).fit(X).labels_
        l2 = KMeans(n_clusters=3, random_state=4).fit(X).labels_
        np.testing.assert_array_equal(l1, l2)

    def test_rejects_more_clusters_than_samples(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=10).fit(np.zeros((5, 2)))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KMeans().predict(np.zeros((2, 2)))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 5))
    def test_every_cluster_nonempty(self, k):
        X, _ = _blobs(n_per=40, seed=k)
        km = KMeans(n_clusters=k, random_state=k).fit(X)
        assert np.unique(km.labels_).size == k


class TestDBSCAN:
    def test_recovers_blobs_and_flags_outliers(self):
        X, truth = _blobs(spread=0.4)
        X = np.vstack([X, [[100.0, 100.0]]])  # one far outlier
        db = DBSCAN(eps=1.5, min_samples=4).fit(X)
        assert db.n_clusters_ == 3
        assert db.labels_[-1] == -1
        assert _agreement(db.labels_[:-1], truth) > 0.95

    def test_all_noise_when_eps_tiny(self):
        X, _ = _blobs(n_per=20)
        db = DBSCAN(eps=1e-6, min_samples=3).fit(X)
        assert db.noise_fraction_ == 1.0
        assert db.n_clusters_ == 0

    def test_single_cluster_when_eps_huge(self):
        X, _ = _blobs(n_per=20)
        db = DBSCAN(eps=1e3, min_samples=3).fit(X)
        assert db.n_clusters_ == 1
        assert db.noise_fraction_ == 0.0

    def test_duplicate_clump_is_core(self):
        X = np.vstack([np.tile([0.0, 0.0], (10, 1)), [[5.0, 5.0]]])
        db = DBSCAN(eps=0.5, min_samples=5).fit(X)
        assert np.all(db.labels_[:10] == db.labels_[0])
        assert db.labels_[0] >= 0
        assert db.labels_[-1] == -1

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            DBSCAN(eps=0.0)
        with pytest.raises(ValueError):
            DBSCAN(min_samples=0)


class TestAgglomerative:
    def test_recovers_blobs(self):
        X, truth = _blobs(n_per=40)
        ag = AgglomerativeClustering(n_clusters=3).fit(X)
        assert _agreement(ag.labels_, truth) > 0.95

    def test_merge_heights_monotone_tail(self):
        """The final (cross-blob) merges must be far taller than early ones."""
        X, _ = _blobs(n_per=30, spread=0.3)
        ag = AgglomerativeClustering(n_clusters=1).fit(X)
        h = ag.merge_heights_
        assert h[-1] > 5.0 * np.median(h[: h.size // 2])

    def test_n_clusters_respected(self):
        X, _ = _blobs(n_per=25)
        ag = AgglomerativeClustering(n_clusters=5).fit(X)
        assert np.unique(ag.labels_).size == 5

    def test_sample_cap_enforced(self):
        with pytest.raises(ValueError):
            AgglomerativeClustering(max_samples=10).fit(np.zeros((11, 2)))


class TestValidationMetrics:
    def test_silhouette_high_for_separated_blobs(self):
        X, truth = _blobs()
        assert silhouette_score(X, truth) > 0.75

    def test_silhouette_low_for_random_labels(self):
        X, _ = _blobs()
        rng = np.random.default_rng(0)
        rand = rng.integers(0, 3, X.shape[0])
        assert silhouette_score(X, rand) < 0.1

    def test_silhouette_handles_noise_labels(self):
        X, truth = _blobs()
        labels = truth.copy()
        labels[:10] = -1
        s = silhouette_score(X, labels)
        assert -1.0 <= s <= 1.0

    def test_silhouette_single_cluster_is_zero(self):
        X, _ = _blobs()
        assert silhouette_score(X, np.zeros(X.shape[0], dtype=int)) == 0.0

    def test_davies_bouldin_better_for_true_labels(self):
        X, truth = _blobs()
        rng = np.random.default_rng(1)
        rand = rng.integers(0, 3, X.shape[0])
        assert davies_bouldin_index(X, truth) < davies_bouldin_index(X, rand)


class TestWorkloadReport:
    @pytest.fixture(scope="class")
    def dataset(self):
        from repro.config import theta_config
        from repro.data import build_dataset

        return build_dataset(theta_config(n_jobs=1500))

    def test_report_covers_all_jobs(self, dataset):
        rep = cluster_workload(dataset, n_clusters=8)
        assert isinstance(rep, ClusterReport)
        assert rep.labels.shape == (len(dataset),)
        assert sum(s.n_jobs for s in rep.summaries) == len(dataset)

    def test_clusters_align_with_families(self, dataset):
        """Most clusters should be dominated by a single application family."""
        rep = cluster_workload(dataset, n_clusters=10)
        purities = [s.family_purity for s in rep.summaries]
        assert np.median(purities) > 0.55

    def test_per_cluster_model_error(self, dataset):
        from repro.data import feature_matrix
        from repro.ml.gbm import GradientBoostingRegressor

        X, _ = feature_matrix(dataset, "posix")
        model = GradientBoostingRegressor(n_estimators=40, max_depth=5).fit(X, dataset.y)
        rep = cluster_workload(dataset, model=model, model_X=X, n_clusters=6)
        errs = [s.model_error_pct for s in rep.summaries]
        assert all(e is not None and e >= 0.0 for e in errs)
        assert len(rep.worst_modeled(2)) == 2

    def test_model_without_matrix_raises(self, dataset):
        from repro.ml.linear import RidgeRegression

        with pytest.raises(ValueError):
            cluster_workload(dataset, model=RidgeRegression(), model_X=None)
