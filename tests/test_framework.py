"""End-to-end tests of the five-step taxonomy framework (Fig. 7)."""

import numpy as np
import pytest

from repro.config import cori_config, theta_config
from repro.data import build_dataset
from repro.taxonomy import TaxonomyPipeline
from repro.taxonomy.report import render_breakdown

_FAST_TUNING = {
    "n_estimators": (60, 150),
    "max_depth": (6,),
    "learning_rate": (0.1,),
    "min_child_weight": (6,),
    "subsample": (0.8,),
    "colsample_bytree": (0.8,),
    "loss": ("squared",),
}
_FAST_GOLDEN = {
    "n_estimators": (200,),
    "max_depth": (8,),
    "learning_rate": (0.07,),
    "min_child_weight": (6,),
    "subsample": (0.8,),
    "colsample_bytree": (0.8,),
    "loss": ("squared",),
}


@pytest.fixture(scope="module")
def theta_report():
    ds = build_dataset(theta_config(n_jobs=2500))
    pipe = TaxonomyPipeline(
        tuning_grid=_FAST_TUNING, golden_grid=_FAST_GOLDEN,
        ensemble_members=3, ensemble_epochs=10,
    )
    return pipe.run(ds)


class TestPipelineTheta:
    def test_baseline_error_plausible(self, theta_report):
        assert 5.0 < theta_report.breakdown.baseline_error_pct < 40.0

    def test_segments_in_range(self, theta_report):
        for name, value in theta_report.breakdown.segments().items():
            assert -25.0 <= value <= 125.0, name

    def test_app_bound_below_baseline(self, theta_report):
        b = theta_report.breakdown
        assert b.application_bound_pct < b.baseline_error_pct

    def test_golden_model_beats_tuned(self, theta_report):
        """The start-time feature must remove system-modeling error (§VII)."""
        b = theta_report.breakdown
        assert b.system_bound_pct < b.tuned_error_pct

    def test_noise_floor_is_smallest(self, theta_report):
        b = theta_report.breakdown
        assert b.noise_bound_pct < b.application_bound_pct

    def test_noise_bands_ordered(self, theta_report):
        d = theta_report.breakdown.details
        assert 0 < d["noise_band_68_pct"] < d["noise_band_95_pct"]

    def test_ood_fraction_small(self, theta_report):
        assert theta_report.breakdown.details["ood_fraction"] < 0.05

    def test_render(self, theta_report):
        text = render_breakdown(theta_report.breakdown)
        assert "Error taxonomy — theta" in text

    def test_report_artifacts(self, theta_report):
        assert theta_report.tuned_model is not None
        assert theta_report.app_bound.n_sets > 0
        assert theta_report.noise.n_concurrent_sets > 0
        train, val, test = theta_report.splits
        assert np.intersect1d(train, test).size == 0


class TestPipelineCori:
    def test_lmt_step_runs(self):
        ds = build_dataset(cori_config(n_jobs=2500))
        pipe = TaxonomyPipeline(
            tuning_grid=_FAST_TUNING, golden_grid=_FAST_GOLDEN,
            ensemble_members=3, ensemble_epochs=8,
        )
        rep = pipe.run(ds)
        # Step 3.2 only exists on Cori (LMT logs)
        assert rep.breakdown.details["lmt_error_pct"] is not None
        assert rep.breakdown.removed_by_system_logs_pct_of_total >= 0.0
