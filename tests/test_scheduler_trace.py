"""Tests for the workload→scheduler bridge (repro.scheduler.trace)."""

import numpy as np
import pytest

from repro.config import theta_config
from repro.scheduler import Dragonfly
from repro.scheduler.trace import QueueTrace, schedule_jobs, trace_from_jobs
from repro.simulator.engine import simulate


@pytest.fixture(scope="module")
def jobs():
    # a small population; take the first slice so the trace stays short
    sim = simulate(theta_config(n_jobs=400))
    return sim.jobs.take(np.arange(120))


class TestTraceConstruction:
    def test_submission_precedes_intended_start(self, jobs):
        submit, _, _ = trace_from_jobs(jobs, rng=0)
        assert np.all(submit <= jobs.start_time)

    def test_walltime_overestimates_duration(self, jobs):
        _, _, wall = trace_from_jobs(jobs, rng=0)
        assert np.all(wall >= jobs.duration * 1.1 - 1e-6)

    def test_nodes_passed_through(self, jobs):
        _, nodes, _ = trace_from_jobs(jobs)
        np.testing.assert_array_equal(nodes, jobs.nodes)

    def test_deterministic_given_seed(self, jobs):
        a = trace_from_jobs(jobs, rng=5)
        b = trace_from_jobs(jobs, rng=5)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)


class TestScheduleJobs:
    def test_row_alignment_and_types(self, jobs):
        trace = schedule_jobs(jobs, rng=1)
        assert isinstance(trace, QueueTrace)
        assert len(trace) == len(jobs)
        assert np.all(trace.wait_time >= 0.0)
        assert trace.backfilled.dtype == bool

    def test_default_machine_fits_population(self, jobs):
        trace = schedule_jobs(jobs, rng=1)
        assert 0.0 < trace.stats.utilization <= 1.0

    def test_explicit_too_small_machine_rejected(self, jobs):
        tiny = Dragonfly(n_groups=2, routers_per_group=2, nodes_per_router=1)
        with pytest.raises(ValueError, match="widest job"):
            schedule_jobs(jobs, topology=tiny)

    def test_backfill_disabled_yields_no_backfills(self, jobs):
        trace = schedule_jobs(jobs, backfill=False, rng=1)
        assert not trace.backfilled.any()

    def test_random_placement_spreads_allocations(self, jobs):
        topo = Dragonfly(n_groups=10, routers_per_group=16, nodes_per_router=4)
        tight = schedule_jobs(jobs, topology=topo, policy="cluster", rng=2)
        loose = schedule_jobs(jobs, topology=topo, policy="random", rng=2)
        multi = jobs.nodes > 4  # single-router jobs have locality 0 everywhere
        if multi.sum() >= 5:
            assert tight.locality[multi].mean() < loose.locality[multi].mean()
