"""Microbenchmarks for the tree-ensemble perf kernels (packed vs. looped).

Times the two hot paths the perf layer replaced:

* **forest predict** — 200-tree packed-arena evaluation vs. the per-tree
  ``tree.predict`` loop on 20k rows (target: ≥ 3× and bit-identical), and
* **GBM fit** — histogram-subtraction vs. direct-histogram training at
  depth ≥ 8 (target: ≥ 1.3×, same tree structures).

Each run appends one entry to ``benchmarks/results/BENCH_kernels.json`` so
future PRs can track kernel regressions as a trajectory, and writes the
usual human-readable table next to it.  Runs standalone
(``python benchmarks/bench_perf_kernels.py``) or via an explicit pytest
path (``pytest benchmarks/bench_perf_kernels.py``).
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.ml.binning import QuantileBinner
from repro.ml.forest import RandomForestRegressor
from repro.ml.gbm import GradientBoostingRegressor

RESULTS_DIR = Path(__file__).parent / "results"
TRAJECTORY = RESULTS_DIR / "BENCH_kernels.json"

FOREST_TREES = 200
FOREST_TRAIN = 4_000
PREDICT_ROWS = 20_000
GBM_ROWS = 20_000
GBM_DEPTH = 8
GBM_TREES = 20
N_FEATURES = 20


def _timed(fn, reps=3):
    best = np.inf
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _synth(n, d, seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n, d))
    y = (
        np.sin(2 * X[:, 0])
        + 0.5 * X[:, 1] ** 2
        + X[:, 2] * X[:, 3]
        + 0.1 * rng.normal(0, 1, n)
    )
    return X, y


def bench_forest_predict() -> dict:
    """Packed arena vs. per-tree loop on a 200-tree forest, 20k rows."""
    X, y = _synth(FOREST_TRAIN, N_FEATURES, seed=0)
    forest = RandomForestRegressor(
        n_estimators=FOREST_TREES, max_depth=12, random_state=0
    ).fit(X, y)
    Xt, _ = _synth(PREDICT_ROWS, N_FEATURES, seed=99)
    codes = forest.binner_.transform(np.asarray(Xt, dtype=float))

    t_loop, mat_loop = _timed(lambda: np.stack([t.predict(codes) for t in forest.trees_]))
    pack = forest._ensure_pack()
    t_pack, mat_pack = _timed(lambda: pack.predict_matrix(codes))
    assert np.array_equal(mat_loop, mat_pack), "packed forest is not bit-identical"

    return {
        "n_trees": FOREST_TREES,
        "n_rows": PREDICT_ROWS,
        "arena_nodes": pack.n_nodes,
        "arena_depth": pack.max_depth,
        "looped_s": round(t_loop, 4),
        "packed_s": round(t_pack, 4),
        "speedup": round(t_loop / t_pack, 2),
    }


def bench_gbm_fit() -> dict:
    """Histogram subtraction vs. direct histograms, depth-8 GBM on 20k rows."""
    X, y = _synth(GBM_ROWS, N_FEATURES, seed=1)
    # freeze + prime the identity-keyed binning cache (the sweep-path
    # contract) so both variants time only tree growth
    X.setflags(write=False)
    QuantileBinner(64).fit_transform(X)
    times = {False: np.inf, True: np.inf}
    models = {}
    for _rep in range(2):  # best-of-2, interleaved to even out machine noise
        for sub in (False, True):
            m = GradientBoostingRegressor(
                n_estimators=GBM_TREES,
                max_depth=GBM_DEPTH,
                min_child_weight=3.0,
                loss="squared",
                hist_subtraction=sub,
            )
            t0 = time.perf_counter()
            m.fit(X, y)
            times[sub] = min(times[sub], time.perf_counter() - t0)
            models[sub] = m
    for t_sub, t_ref in zip(models[True].trees_, models[False].trees_):
        assert np.array_equal(t_sub.nodes_.feature, t_ref.nodes_.feature)

    return {
        "n_rows": GBM_ROWS,
        "max_depth": GBM_DEPTH,
        "n_estimators": GBM_TREES,
        "full_hist_s": round(times[False], 4),
        "subtraction_s": round(times[True], 4),
        "speedup": round(times[False] / times[True], 2),
    }


def run() -> dict:
    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "forest_predict": bench_forest_predict(),
        "gbm_fit": bench_gbm_fit(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    trajectory = []
    if TRAJECTORY.exists():
        trajectory = json.loads(TRAJECTORY.read_text())
    trajectory.append(entry)
    TRAJECTORY.write_text(json.dumps(trajectory, indent=2) + "\n")

    fp, gf = entry["forest_predict"], entry["gbm_fit"]
    table = "\n".join(
        [
            "PERF KERNELS (packed vs. looped / subtraction vs. full)",
            f"forest predict {fp['n_trees']} trees x {fp['n_rows']} rows: "
            f"{fp['looped_s']:.3f}s -> {fp['packed_s']:.3f}s ({fp['speedup']:.2f}x)",
            f"gbm fit depth {gf['max_depth']} x {gf['n_estimators']} trees: "
            f"{gf['full_hist_s']:.3f}s -> {gf['subtraction_s']:.3f}s ({gf['speedup']:.2f}x)",
        ]
    )
    print("\n" + table)
    (RESULTS_DIR / "perf_kernels.txt").write_text(table + "\n")
    return entry


def test_perf_kernels():
    entry = run()
    assert entry["forest_predict"]["speedup"] >= 3.0
    assert entry["gbm_fit"]["speedup"] >= 1.3


if __name__ == "__main__":
    print(json.dumps(run(), indent=2))
