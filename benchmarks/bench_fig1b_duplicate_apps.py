"""Fig. 1b — per-application duplicate-error spread.

Paper: identical runs of different applications (Writer, pw.x, HACC, IOR,
QB) spread differently — some applications are far more sensitive to
contention than others, even accounting for global system state.  We
regenerate the per-family duplicate interquartile spreads and check the
ordering: Writer widest, IOR tightest.
"""

import numpy as np

from repro.data.duplicates import concurrent_subsets
from repro.ml.metrics import dex_to_pct
from repro.simulator.applications import family_index
from repro.taxonomy.tdist import pooled_residuals
from repro.viz import format_table

from conftest import record

FAMILIES_IN_FIGURE = ("writer", "pwx", "hacc", "ior", "qb")

#: near-concurrent window: duplicates within an hour share ζg, so their
#: spread isolates contention + noise ("even when accounting for global
#: system state", §IV)
WINDOW_S = 7200.0


def _family_spread(art, name: str) -> float:
    ds = art.dataset
    fid = family_index(name)
    rows = []
    for members in concurrent_subsets(art.dups, ds.start_time, window=WINDOW_S):
        members = members[ds.meta["family_id"][members] == fid]
        if members.size >= 2:
            rows.append(members)
    resid = pooled_residuals(ds.y, rows)
    if resid.size < 4:
        return float("nan")
    return float(np.std(resid))


def test_fig1b_duplicate_error_per_application(benchmark, theta):
    spreads = benchmark.pedantic(
        lambda: {name: _family_spread(theta, name) for name in FAMILIES_IN_FIGURE},
        rounds=1, iterations=1,
    )
    rows = [
        [name, f"±{dex_to_pct(spread):.2f}%" if np.isfinite(spread) else "n/a"]
        for name, spread in sorted(spreads.items(), key=lambda kv: -kv[1])
    ]
    record(
        "fig1b_duplicate_apps",
        format_table(
            ["application", "concurrent duplicate sigma"],
            rows,
            title="Fig 1b — duplicate spread per application "
                  "(paper: Writer widest ~+50/-33%, IOR tight)",
        ),
    )
    assert spreads["writer"] > spreads["ior"], "Writer must be most contention-sensitive"
    assert spreads["pwx"] > spreads["ior"]
