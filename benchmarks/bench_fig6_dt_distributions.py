"""Fig. 6 + §IX text — duplicate-error distributions per Δt decade.

Paper: residual distributions widen from the 0–1 s bin (pure contention +
noise) to the 10⁷ s bin (full I/O climate); the Δt = 0 distribution is
Student-t (small sets bias the mean), and after Bessel correction it yields
Theta ±5.71 %/±10.56 % and Cori ±7.21 %/±14.99 % expected variability.
"""

import numpy as np

from repro.data import duplicate_pairs
from repro.ml.metrics import dex_to_pct
from repro.taxonomy import noise_bound
from repro.viz import format_table

from conftest import record

DECADES = [(0, 1), (1, 10), (10, 100), (100, 1e3), (1e3, 1e4), (1e4, 1e5), (1e5, 1e6), (1e6, 1e7), (1e7, np.inf)]


def _decade_widths(art):
    ds = art.dataset
    dt, dv, w = duplicate_pairs(art.dups, ds.start_time, ds.y)
    widths = []
    for lo, hi in DECADES:
        mask = (dt >= lo) & (dt < hi)
        if mask.sum() < 10:
            widths.append(np.nan)
            continue
        # weighted std of pair differences; /sqrt(2) maps back to per-job σ
        mean = np.average(dv[mask], weights=w[mask])
        var = np.average((dv[mask] - mean) ** 2, weights=w[mask])
        widths.append(np.sqrt(var) / np.sqrt(2.0))
    return widths


def test_fig6_dt_decades_and_noise_bands(benchmark, theta, cori):
    widths_t = benchmark.pedantic(lambda: _decade_widths(theta), rounds=1, iterations=1)
    nb_t = noise_bound(theta.dataset.y, theta.dups, theta.dataset.start_time)
    nb_c = noise_bound(cori.dataset.y, cori.dups, cori.dataset.start_time)

    rows = [
        [f"{lo:g}-{hi:g}s σ", f"±{dex_to_pct(wd):.2f}%" if np.isfinite(wd) else "n/a"]
        for (lo, hi), wd in zip(DECADES, widths_t)
    ]
    rows += [
        ["t-fit df (Δt=0, Theta)", f"{nb_t.tfit.df:.1f} (t, not normal)"],
        ["Theta 68% band", f"±{nb_t.band_68_pct:.2f}% (paper ±5.71%)"],
        ["Theta 95% band", f"±{nb_t.band_95_pct:.2f}% (paper ±10.56%)"],
        ["Cori 68% band", f"±{nb_c.band_68_pct:.2f}% (paper ±7.21%)"],
        ["Cori 95% band", f"±{nb_c.band_95_pct:.2f}% (paper ±14.99%)"],
        ["Theta Δt=0 sets of size 2", f"{nb_t.set_size_share_2 * 100:.0f}% (paper 70%)"],
        ["Theta Δt=0 sets ≤ 6", f"{nb_t.set_size_share_le6 * 100:.0f}% (paper 96%)"],
    ]
    record(
        "fig6_dt_distributions",
        format_table(["quantity", "value"], rows,
                     title="Fig 6 + §IX — duplicate residual width per Δt decade (Theta)"),
    )

    finite = [wd for wd in widths_t if np.isfinite(wd)]
    assert finite[-1] > finite[0], "distributions must widen with Δt"
    assert 4.0 < nb_t.band_68_pct < 8.0
    assert nb_c.band_68_pct > nb_t.band_68_pct, "Cori must be noisier than Theta"
    assert nb_t.band_95_pct > 1.7 * nb_t.band_68_pct
