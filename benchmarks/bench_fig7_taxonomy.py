"""Fig. 7 — the full framework applied to both platforms.

Paper anchors (text): estimates do not sum to 100 % — unexplained error is
32.9 % on Theta and 13.5 % on Cori (larger datasets explain more); Cori's
aleatory share is large (~42 %), its application estimate ~33 % with ~32 %
actually removed by tuning, system estimate ~9 % with ~8 % removed by LMT,
OoD ~2 %.  We assemble the same breakdown from the shared artifacts.
"""

import numpy as np

from repro.ml.metrics import median_abs_pct_error
from repro.taxonomy import application_bound, noise_bound, ood_attribution
from repro.taxonomy.errors import ErrorBreakdown
from repro.taxonomy.report import render_breakdown
from repro.viz import format_table

from conftest import OOD_QUANTILE, record


def _breakdown(art, ensemble, e_logs=None) -> ErrorBreakdown:
    ds = art.dataset
    train, val, test = art.splits
    e0 = art.err(art.baseline, art.X_app, test)
    e_tuned = art.err(art.tuned, art.X_app, test)
    e_time = art.err(art.golden, art.X_time, test)

    app = application_bound(ds.frames["posix"], ds.y, dups=art.dups)
    decomp = ensemble.decompose(art.X_app[test])
    ood = ood_attribution(decomp, ds.y[test], pred_dex=art.tuned.predict(art.X_app[test]),
                          quantile=OOD_QUANTILE)
    exclude = np.zeros(len(ds), dtype=bool)
    exclude[test[ood.is_ood]] = True
    noise = noise_bound(ds.y, art.dups, ds.start_time, exclude=exclude)

    return ErrorBreakdown(
        platform=ds.name,
        baseline_error_pct=e0,
        application_pct_of_total=max(0.0, e0 - app.median_abs_pct) / e0 * 100,
        system_pct_of_total=max(0.0, e_tuned - e_time) / e0 * 100,
        ood_pct_of_total=ood.error_share * 100,
        aleatory_pct_of_total=min(100.0, noise.median_abs_pct / e0 * 100),
        removed_by_tuning_pct_of_total=max(0.0, e0 - e_tuned) / e0 * 100,
        removed_by_system_logs_pct_of_total=(
            max(0.0, e_tuned - e_logs) / e0 * 100 if e_logs is not None else 0.0
        ),
        tuned_error_pct=e_tuned,
        application_bound_pct=app.median_abs_pct,
        system_bound_pct=e_time,
        noise_bound_pct=noise.median_abs_pct,
        details={
            "noise_band_68_pct": noise.band_68_pct,
            "noise_band_95_pct": noise.band_95_pct,
            "ood_fraction": ood.ood_fraction,
        },
    )


def test_fig7_taxonomy_breakdown(benchmark, theta, cori, theta_ensemble, cori_ensemble):
    from repro.data import feature_matrix
    from repro.ml.gbm import GradientBoostingRegressor
    from conftest import TUNED_PARAMS

    # Cori Step 3.2 model (LMT logs)
    train_c, val_c, test_c = cori.splits
    fit_c = np.concatenate([train_c, val_c])
    X_lmt, _ = feature_matrix(cori.dataset, "posix+lmt")
    lmt_model = GradientBoostingRegressor(**TUNED_PARAMS).fit(X_lmt[fit_c], cori.dataset.y[fit_c])
    e_logs = median_abs_pct_error(cori.dataset.y[test_c], lmt_model.predict(X_lmt[test_c]))

    def build():
        return (
            _breakdown(theta, theta_ensemble),
            _breakdown(cori, cori_ensemble, e_logs=e_logs),
        )

    b_theta, b_cori = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = [
        ["Theta unexplained %", 32.9, b_theta.unexplained_pct_of_total],
        ["Cori unexplained %", 13.5, b_cori.unexplained_pct_of_total],
        ["Cori app estimate %", 32.9, b_cori.application_pct_of_total],
        ["Cori removed by tuning %", 31.6, b_cori.removed_by_tuning_pct_of_total],
        ["Cori system estimate %", 9.4, b_cori.system_pct_of_total],
        ["Cori removed by LMT %", 7.7, b_cori.removed_by_system_logs_pct_of_total],
        ["Cori aleatory %", 42.2, b_cori.aleatory_pct_of_total],
        ["Cori OoD %", 2.0, b_cori.ood_pct_of_total],
        ["Theta OoD %", 2.4, b_theta.ood_pct_of_total],
    ]
    text = (
        format_table(["segment", "paper", "measured"], rows, title="Fig 7 — error attribution")
        + "\n\n" + render_breakdown(b_theta) + "\n\n" + render_breakdown(b_cori)
    )
    record("fig7_taxonomy", text)

    for b in (b_theta, b_cori):
        b.validate()
        assert 0.0 <= b.ood_pct_of_total <= 15.0
        assert b.aleatory_pct_of_total > 5.0
        assert b.unexplained_pct_of_total < 80.0
    # Cori's system segment must be mostly recovered by LMT logs (§X)
    assert b_cori.removed_by_system_logs_pct_of_total > 0.3 * b_cori.system_pct_of_total
