"""Fig. 1d — error before vs after deployment (temporal drift).

Paper: a model trained on Jan 2018–Jul 2019 keeps a low median error on
held-out data from the same period (green) but spikes once evaluated on
data collected after the training span (red) — driven by novel applications
and shifted system state.  We regenerate both curves with a temporal split.
"""

import numpy as np

from repro.data import feature_matrix, temporal_split
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.metrics import median_abs_pct_error
from repro.viz import format_table

from conftest import BASELINE_PARAMS, record


def test_fig1d_deployment_drift(benchmark, theta):
    ds = theta.dataset
    train_all, deploy = temporal_split(ds.start_time, cutoff_frac=0.8)
    rng = np.random.default_rng(0)
    holdout_mask = rng.random(train_all.size) < 0.2
    train = train_all[~holdout_mask]
    holdout = train_all[holdout_mask]

    def fit_and_eval():
        model = GradientBoostingRegressor(**BASELINE_PARAMS)
        model.fit(theta.X_app[train], ds.y[train])
        e_in = median_abs_pct_error(ds.y[holdout], model.predict(theta.X_app[holdout]))
        e_out = median_abs_pct_error(ds.y[deploy], model.predict(theta.X_app[deploy]))
        return model, e_in, e_out

    model, e_in, e_out = benchmark.pedantic(fit_and_eval, rounds=1, iterations=1)

    # weekly median error across the deployment period (the red curve)
    t = ds.start_time[deploy]
    weeks = ((t - t.min()) // (7 * 86400)).astype(int)
    errs = np.abs(ds.y[deploy] - model.predict(theta.X_app[deploy]))
    weekly = [float(np.median(errs[weeks == wk])) for wk in np.unique(weeks)]

    ood_deploy = ds.meta["is_ood"][deploy]
    e_ood = median_abs_pct_error(ds.y[deploy][ood_deploy], model.predict(theta.X_app[deploy][ood_deploy])) if ood_deploy.any() else float("nan")

    record(
        "fig1d_deployment_drift",
        format_table(
            ["quantity", "paper", "measured"],
            [
                ["in-period holdout err %", "low (green)", e_in],
                ["post-deployment err %", "spikes (red)", e_out],
                ["post/pre ratio", ">1", f"{e_out / e_in:.2f}"],
                ["err on novel (OoD) apps %", "highest", e_ood],
                ["weekly medians tracked", "-", len(weekly)],
            ],
            title="Fig 1d — before/after deployment error (Theta, temporal split)",
        ),
    )
    assert e_out > e_in, "deployment error must exceed in-period error"
    assert e_ood > e_out, "novel applications must drive the spike"
