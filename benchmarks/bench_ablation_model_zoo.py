"""Ablation — the §VI.B claim across a wider model zoo.

The paper tunes two model families (XGBoost, NNs) and finds both stall at
the duplicate bound, concluding "the architecture and the tuning of models
are not the fundamental issue".  We extend the comparison to six model
families from :mod:`repro.ml` — if the claim holds, every reasonably tuned
non-linear model lands in a band just above the bound, and no model beats
it.
"""

import numpy as np

from repro.data.preprocessing import Standardizer
from repro.ml.base import Pipeline
from repro.ml.forest import RandomForestRegressor
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.linear import LassoRegression, RidgeRegression
from repro.ml.metrics import median_abs_pct_error
from repro.ml.neighbors import KNeighborsRegressor
from repro.ml.nn import MLPRegressor
from repro.taxonomy import application_bound
from repro.viz import format_table

from conftest import record


def _zoo():
    log_scale = lambda model: Pipeline([("scale", Standardizer()), ("m", model)])
    return {
        "ridge (log feats)": log_scale(RidgeRegression(alpha=1.0)),
        "lasso (log feats)": log_scale(LassoRegression(alpha=0.003)),
        "kNN (k=6)": KNeighborsRegressor(n_neighbors=6),
        "random forest": RandomForestRegressor(n_estimators=150, max_depth=14, random_state=0),
        "GBM (tuned)": GradientBoostingRegressor(
            n_estimators=400, max_depth=10, learning_rate=0.05,
            min_child_weight=6, subsample=0.8, colsample_bytree=0.8, loss="squared",
        ),
        "MLP": log_scale(MLPRegressor(hidden=(128, 128), epochs=60, random_state=0)),
    }


def test_ablation_model_zoo(benchmark, theta):
    ds = theta.dataset
    train, val, test = theta.splits
    fit_idx = np.concatenate([train, val])
    X = theta.X_app
    bound = application_bound(ds.frames["posix"], ds.y, dups=theta.dups)

    def run():
        out = {}
        for name, model in _zoo().items():
            model.fit(X[fit_idx], ds.y[fit_idx])
            out[name] = median_abs_pct_error(ds.y[test], model.predict(X[test]))
        return out

    errors = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [["duplicate bound (no model can beat)", f"{bound.median_abs_pct:.2f}%"]]
    rows += [[name, f"{err:.2f}%"] for name, err in sorted(errors.items(), key=lambda kv: kv[1])]
    record(
        "ablation_model_zoo",
        format_table(["model", "test median |err|"], rows,
                     title="Ablation — model zoo vs the duplicate bound (Theta)"),
    )

    nonlinear = [errors["GBM (tuned)"], errors["random forest"], errors["MLP"]]
    # §VI.B: tuned nonlinear families converge to a band above the bound...
    for err in nonlinear:
        assert err > 0.85 * bound.median_abs_pct, "no model may beat the bound"
    assert min(nonlinear) < 2.2 * bound.median_abs_pct, "tuned models approach the bound"
    # ...and the best three agree with each other far better than with ridge
    spread = max(nonlinear) - min(nonlinear)
    assert spread < 0.8 * (errors["ridge (log feats)"] - min(nonlinear))