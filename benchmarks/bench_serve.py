"""Serving-path benchmark: micro-batched vs direct single-row predicts.

Streams single-row requests at a registered forest and GBM three ways
(direct per-request ``predict``, micro-batched through
:class:`~repro.serve.service.InferenceService`, cached replay) and records
the throughput/latency trajectory — one entry per run, like
``BENCH_kernels.json`` — into ``benchmarks/results/BENCH_serve.json``.
A fourth scenario routes one interleaved stream over *both* models
through the multi-model :class:`~repro.serve.router.ServingGateway` with
the adaptive batch tuner stepping between waves, a fifth serves the
same workload through a two-process
:class:`~repro.serve.shard.ShardedServingCluster` (hash-routed stream +
replicated row-parallel block fan-out), and a sixth measures the online
monitoring plane: monitored vs. unmonitored stream throughput (the
``repro.serve.monitor`` overhead contract, ≤ 5 %) plus a drift-injection
pass whose PSI alert must auto-rollback production.  A seventh drives
the resilience plane: retry-wrapped vs bare cluster throughput (the
``RetryController`` ≤ 5 % wrap-overhead contract) followed by
kill-during-flight storms under a :class:`ShardSupervisor`, recording
time-to-first-success recovery latency (p50/p99).  An eighth serves the
stream over TCP through the asyncio network front door
(:class:`~repro.serve.net.server.AsyncServeServer` + pipelined
:class:`~repro.serve.net.client.ServeClient`), recording wire round-trip
p50/p99 and the admission-control shed rate of an overload burst.  A
ninth compares the cluster's pluggable shard transports — the same
Zipf-skewed stream over ``transport="pipe"`` vs ``transport="socket"``
(req/s, p50/p99) plus work-stealing on vs off under maximal hash skew
(tail latency, steal count).  A tenth measures the observability plane
(:mod:`repro.serve.obs`): traced vs untraced stream throughput at the
sampled production config (the tracing ≤ 5 % overhead contract) plus a
cross-process trace-completeness gate (≥ 6 distinct stages reassembled
by trace id over a socket cluster) and an exact metrics-agreement check
(Prometheus/JSON exports vs ``ClusterStats`` counters).
Bit-identity across every path — including across the wire and across
both transports — is asserted inside the bench core before any number is
written.

Runs standalone (``python benchmarks/bench_serve.py``) or via an explicit
pytest path (``pytest benchmarks/bench_serve.py``); the same comparison is
reachable as ``repro serve-bench``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.serve.bench import (
    record_trajectory_entry,
    run_fault_bench,
    run_gateway_bench,
    run_monitor_bench,
    run_net_bench,
    run_obs_bench,
    run_serve_bench,
    run_shard_bench,
    run_transport_bench,
)

RESULTS_DIR = Path(__file__).parent / "results"

N_REQUESTS = 2000
N_TREES = 150
MAX_BATCH = 256
MAX_DELAY = 0.002


def run() -> dict:
    entry: dict = {}
    for kind in ("forest", "gbm"):
        t0 = time.perf_counter()
        entry[kind] = run_serve_bench(
            kind=kind,
            n_trees=N_TREES,
            n_requests=N_REQUESTS,
            max_batch=MAX_BATCH,
            max_delay=MAX_DELAY,
        )
        entry[kind]["bench_wall_s"] = round(time.perf_counter() - t0, 2)

    t0 = time.perf_counter()
    entry["gateway"] = run_gateway_bench(
        kinds=("forest", "gbm"),
        n_trees=N_TREES,
        n_requests=N_REQUESTS,
        max_batch=MAX_BATCH,
        max_delay=MAX_DELAY,
    )
    entry["gateway"]["bench_wall_s"] = round(time.perf_counter() - t0, 2)

    t0 = time.perf_counter()
    entry["cluster"] = run_shard_bench(
        kinds=("forest", "gbm"),
        n_trees=N_TREES,
        n_requests=N_REQUESTS,
        n_shards=2,
        max_batch=MAX_BATCH,
        max_delay=MAX_DELAY,
    )
    entry["cluster"]["bench_wall_s"] = round(time.perf_counter() - t0, 2)

    t0 = time.perf_counter()
    entry["monitor"] = run_monitor_bench(
        kind="forest",
        n_trees=N_TREES,
        n_requests=N_REQUESTS,
        max_batch=MAX_BATCH,
    )
    entry["monitor"]["bench_wall_s"] = round(time.perf_counter() - t0, 2)

    t0 = time.perf_counter()
    entry["faults"] = run_fault_bench(
        kind="forest",
        n_trees=N_TREES,
        n_requests=N_REQUESTS // 2,
        max_batch=MAX_BATCH,
        max_delay=MAX_DELAY,
    )
    entry["faults"]["bench_wall_s"] = round(time.perf_counter() - t0, 2)

    t0 = time.perf_counter()
    entry["net"] = run_net_bench(
        kind="forest",
        n_trees=N_TREES,
        n_requests=N_REQUESTS,
        max_batch=MAX_BATCH,
        max_delay=MAX_DELAY,
    )
    entry["net"]["bench_wall_s"] = round(time.perf_counter() - t0, 2)

    t0 = time.perf_counter()
    entry["transport"] = run_transport_bench(
        kinds=("forest", "gbm"),
        n_trees=N_TREES,
        n_requests=N_REQUESTS,
        max_batch=MAX_BATCH,
        max_delay=MAX_DELAY,
    )
    entry["transport"]["bench_wall_s"] = round(time.perf_counter() - t0, 2)

    t0 = time.perf_counter()
    entry["obs"] = run_obs_bench(
        kind="forest",
        n_trees=N_TREES,
        n_requests=N_REQUESTS,
        max_batch=MAX_BATCH,
    )
    entry["obs"]["bench_wall_s"] = round(time.perf_counter() - t0, 2)

    record_trajectory_entry(entry, RESULTS_DIR)

    lines = ["SERVE (micro-batched vs direct, 1-row request streams)"]
    for kind in ("forest", "gbm"):
        r = entry[kind]
        lines.append(
            f"{kind}: {r['n_requests']} reqs x {r['n_trees']} trees: "
            f"{r['unbatched_rps']:.0f} -> {r['batched_rps']:.0f} req/s "
            f"({r['speedup_batched']:.2f}x batched, {r['speedup_cached']:.2f}x cached, "
            f"mean batch {r['mean_batch_rows']:.0f} rows)"
        )
    g = entry["gateway"]
    lines.append(
        f"gateway: {g['n_requests']} reqs over {'+'.join(g['models'])}: "
        f"{g['direct_rps']:.0f} -> {g['gateway_rps']:.0f} req/s "
        f"({g['speedup_gateway']:.2f}x, mean batch {g['mean_batch_rows']:.0f} rows, "
        f"adaptive-tuned)"
    )
    c = entry["cluster"]
    lines.append(
        f"cluster: {c['n_requests']} reqs over {'+'.join(c['models'])} x "
        f"{c['n_shards']} shard processes: {c['direct_rps']:.0f} -> "
        f"{c['cluster_rps']:.0f} req/s ({c['speedup_cluster']:.2f}x stream, "
        f"{c['speedup_block']:.2f}x replicated {c['block_rows']}-row block)"
    )
    m = entry["monitor"]
    lines.append(
        f"monitor: {m['plain_rps']:.0f} -> {m['monitored_rps']:.0f} req/s "
        f"monitored ({m['overhead_pct']:+.2f}% overhead, budget "
        f"{m['max_overhead_pct']:.0f}%); injected drift PSI {m['max_psi']:.2f} "
        f"-> auto-rollback to v{m['rolled_back_to']}"
    )
    f = entry["faults"]
    lines.append(
        f"faults: {f['bare_rps']:.0f} -> {f['wrapped_rps']:.0f} req/s "
        f"retry-wrapped ({f['overhead_pct']:+.2f}% overhead, budget "
        f"{f['max_overhead_pct']:.0f}%); {f['n_kills']} kill storms: "
        f"recovery p50 {f['recovery_p50_ms']:.0f} ms / p99 "
        f"{f['recovery_p99_ms']:.0f} ms, {f['respawns']} respawns"
    )
    n = entry["net"]
    lines.append(
        f"net: {n['inproc_rps']:.0f} -> {n['net_rps']:.0f} req/s over TCP "
        f"(window {n['window']}, p50 {n['net_p50_ms']:.2f} ms / p99 "
        f"{n['net_p99_ms']:.2f} ms); overload burst: {n['served']} served + "
        f"{n['shed']} shed of {n['overload_requests']} "
        f"({n['shed_rate']:.0%} shed, budget {n['overload_in_flight']})"
    )
    t = entry["transport"]
    lines.append(
        f"transport: {t['n_requests']} Zipf reqs x {t['n_shards']} shards: "
        f"pipe {t['pipe']['rps']:.0f} vs socket {t['socket']['rps']:.0f} req/s "
        f"({t['socket_vs_pipe_rps']:.2f}x, p99 {t['pipe']['p99_ms']:.1f} / "
        f"{t['socket']['p99_ms']:.1f} ms); skewed steal off->on: p99 "
        f"{t['steal']['off']['p99_ms']:.1f} -> {t['steal']['on']['p99_ms']:.1f} ms, "
        f"{t['steal']['on']['steals']} steals"
    )
    o = entry["obs"]
    lines.append(
        f"obs: {o['plain_rps']:.0f} -> {o['traced_rps']:.0f} req/s traced "
        f"1-in-{o['trace_sample']} ({o['overhead_pct']:+.2f}% overhead, budget "
        f"{o['max_overhead_pct']:.0f}%); cross-process trace reassembled "
        f"{o['distinct_stages']} stages over {o['n_shards']} socket shards, "
        f"{o['spans_recorded']} spans recorded / {o['spans_dropped']} dropped, "
        f"exports agree with ClusterStats on {len(o['metrics_agree'])} families"
    )
    table = "\n".join(lines)
    print("\n" + table)
    (RESULTS_DIR / "serve.txt").write_text(table + "\n")
    return entry


def test_serve_bench():
    entry = run()
    assert entry["forest"]["speedup_batched"] >= 3.0
    assert entry["gbm"]["speedup_batched"] >= 3.0
    assert entry["gateway"]["speedup_gateway"] >= 2.0
    # bit-identity is the cluster's hard gate (asserted inside the bench);
    # the perf floor is deliberately loose — IPC costs real time and both
    # bench names can hash-route to one shard
    assert entry["cluster"]["speedup_cluster"] >= 1.0
    # the monitor's gates (<=5% overhead, drift detection + rollback) are
    # asserted inside run_monitor_bench — reaching here means they held
    assert entry["monitor"]["overhead_pct"] <= entry["monitor"]["max_overhead_pct"]
    # likewise the fault bench gates bit-identity, wrap overhead, fail-fast
    # malformed handling, and full recovery from every kill storm
    assert entry["faults"]["overhead_pct"] <= entry["faults"]["max_overhead_pct"]
    assert entry["faults"]["exhausted"] == 0
    # the net bench gates wire bit-identity (stream, dist, block) and a
    # non-zero shed rate inside run_net_bench; pin the accounting here
    assert entry["net"]["shed"] > 0
    assert entry["net"]["served"] + entry["net"]["shed"] == entry["net"]["overload_requests"]
    # the transport bench gates pipe/socket/direct bit-identity and that
    # stealing actually rerouted inside run_transport_bench; pin the
    # accounting here
    assert entry["transport"]["steal"]["on"]["steals"] > 0
    assert entry["transport"]["steal"]["off"]["steals"] == 0
    assert entry["transport"]["pipe"]["rps"] > 0
    assert entry["transport"]["socket"]["rps"] > 0
    # the obs bench gates tracing overhead, cross-process trace
    # completeness, and exact export/stats agreement inside run_obs_bench;
    # pin the contract numbers here
    assert entry["obs"]["overhead_pct"] <= entry["obs"]["max_overhead_pct"]
    assert entry["obs"]["distinct_stages"] >= 6
    assert entry["obs"]["spans_recorded"] > 0


if __name__ == "__main__":
    print(json.dumps(run(), indent=2))
