"""Fig. 1c — Δφ vs Δt cloud for duplicate pairs.

Paper: the relative throughput difference between pairs of identical jobs
grows with the time between the runs (seconds → months), with the Δt = 0
strip already ±5 % wide.  We regenerate the pair cloud and check that the
spread widens monotonically across Δt decades.
"""

import numpy as np

from repro.data import duplicate_pairs
from repro.ml.metrics import dex_to_pct
from repro.viz import ascii_scatter, format_table

from conftest import record


def test_fig1c_pair_cloud(benchmark, theta):
    ds = theta.dataset

    def pairs():
        return duplicate_pairs(theta.dups, ds.start_time, ds.y)

    dt, dv, w = benchmark.pedantic(pairs, rounds=1, iterations=1)
    keep = dt >= 0
    dt, dv, w = dt[keep], dv[keep], w[keep]

    # weighted spread per Δt decade
    edges = [0, 1, 60, 3600, 86400, 86400 * 30, np.inf]
    labels = ["0s", "<1min", "<1h", "<1day", "<1month", ">1month"]
    rows = []
    spreads = []
    for lo, hi, label in zip(edges[:-1], edges[1:], labels):
        mask = (dt >= lo) & (dt < hi)
        if mask.sum() < 8:
            rows.append([label, int(mask.sum()), "n/a"])
            spreads.append(np.nan)
            continue
        order = np.argsort(np.abs(dv[mask]))
        cum = np.cumsum(w[mask][order]) / w[mask].sum()
        p75_dex = np.abs(dv[mask][order])[np.searchsorted(cum, 0.75)]
        spreads.append(p75_dex)
        rows.append([label, int(mask.sum()), f"±{dex_to_pct(p75_dex):.1f}%"])

    record(
        "fig1c_dup_pairs",
        format_table(
            ["Δt range", "pairs", "|Δφ| p75 (weighted)"],
            rows,
            title="Fig 1c — duplicate-pair throughput difference vs Δt "
                  "(paper: ±5% at Δt=0, widening with Δt)",
        )
        + "\n\n"
        + ascii_scatter(np.maximum(dt, 0.5), dv, logx=True,
                        title="Δφ (dex) vs log10 Δt (s)"),
    )

    finite = [s for s in spreads if np.isfinite(s)]
    assert len(finite) >= 4
    assert finite[-1] > finite[0], "spread must widen from Δt=0 to months"
    # Δt=0 strip: the paper's ±5 % is the per-job σ; a *pair difference*
    # carries √2·σ and p75 of |N(0, √2σ)| ≈ 1.15·√2·σ ⇒ ~±9-11 % here
    assert 3.0 < dex_to_pct(spreads[0]) < 13.0
