"""§VI.A text numbers — the duplicate census and application bound.

Paper: Theta — 19010 duplicates (23.5 % of the dataset) over 3509 sets,
bound 10.01 %; Cori — 504920 duplicates (54 %) over 77390 sets, bound
14.15 %.  Absolute counts scale with dataset size; the fractions, mean set
size, and bounds are the scale-free anchors we reproduce.
"""

from repro.taxonomy import application_bound
from repro.viz import format_table

from conftest import record


def test_text_duplicate_census(benchmark, theta, cori):
    def census():
        return (
            application_bound(theta.dataset.frames["posix"], theta.dataset.y, dups=theta.dups),
            application_bound(cori.dataset.frames["posix"], cori.dataset.y, dups=cori.dups),
        )

    b_theta, b_cori = benchmark.pedantic(census, rounds=1, iterations=1)

    rows = [
        ["Theta duplicate fraction", "23.5%", f"{b_theta.duplicate_fraction * 100:.1f}%"],
        ["Theta sets", "3509 (of 100K jobs)", f"{b_theta.n_sets} (of {len(theta.dataset)} jobs)"],
        ["Theta mean set size", "5.4", f"{b_theta.n_duplicates / b_theta.n_sets:.1f}"],
        ["Theta app bound", "10.01%", f"{b_theta.median_abs_pct:.2f}%"],
        ["Cori duplicate fraction", "54%", f"{b_cori.duplicate_fraction * 100:.1f}%"],
        ["Cori sets", "77390 (of 1.1M jobs)", f"{b_cori.n_sets} (of {len(cori.dataset)} jobs)"],
        ["Cori mean set size", "6.5", f"{b_cori.n_duplicates / b_cori.n_sets:.1f}"],
        ["Cori app bound", "14.15%", f"{b_cori.median_abs_pct:.2f}%"],
    ]
    record("text_duplicates", format_table(["quantity", "paper", "measured"], rows,
                                           title="§VI.A — duplicate census"))

    assert 0.18 <= b_theta.duplicate_fraction <= 0.33
    assert 0.45 <= b_cori.duplicate_fraction <= 0.65
    assert b_cori.median_abs_pct > b_theta.median_abs_pct
