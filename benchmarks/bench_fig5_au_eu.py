"""Fig. 5 + §VIII — aleatory/epistemic uncertainty distributions and OoD.

Paper: on both systems the test-set AU dominates EU, every job has AU above
a floor (~0.05), half of the total error sits below EU ≈ 0.04, and tagging
the high-EU tail (threshold 0.24 on Theta) removes 0.7 % of jobs carrying
2.4 % of the error — 3x the average (Cori: 2.1 %).  We regenerate the
distribution statistics and the OoD attribution for both platforms.
"""

import numpy as np

from repro.taxonomy import ood_attribution
from repro.viz import format_table

from conftest import OOD_QUANTILE, record


def _panel(art, ensemble, label):
    _, _, test = art.splits
    ds = art.dataset
    decomp = ensemble.decompose(art.X_app[test])
    ood = ood_attribution(decomp, ds.y[test], pred_dex=art.tuned.predict(art.X_app[test]),
                          quantile=OOD_QUANTILE)
    au, eu = decomp.aleatory_std, decomp.epistemic_std
    abs_err = np.abs(ds.y[test] - decomp.mean)
    order = np.argsort(eu)
    cum = np.cumsum(abs_err[order]) / abs_err.sum()
    eu_at_half_error = eu[order][np.searchsorted(cum, 0.5)]
    truth = ds.meta["is_ood"][test]
    tagged_truth_rate = float(truth[ood.is_ood].mean()) if ood.is_ood.any() else 0.0
    return {
        "au_median": float(np.median(au)),
        "eu_median": float(np.median(eu)),
        "au_floor_p5": float(np.percentile(au, 5)),
        "eu_at_half_error": float(eu_at_half_error),
        "ood_fraction": ood.ood_fraction,
        "ood_error_share": ood.error_share,
        "ood_enrichment": ood.enrichment,
        "tagged_truth_rate": tagged_truth_rate,
        "label": label,
    }


def test_fig5_au_eu_and_ood(benchmark, theta, cori, theta_ensemble, cori_ensemble):
    panels = benchmark.pedantic(
        lambda: [_panel(theta, theta_ensemble, "theta"), _panel(cori, cori_ensemble, "cori")],
        rounds=1, iterations=1,
    )
    rows = []
    for p in panels:
        rows += [
            [f"{p['label']} median AU (dex)", "AU >> EU", f"{p['au_median']:.3f}"],
            [f"{p['label']} median EU (dex)", "small in-dist", f"{p['eu_median']:.3f}"],
            [f"{p['label']} AU floor (p5)", "~0.05", f"{p['au_floor_p5']:.3f}"],
            [f"{p['label']} EU at 50% cum err", "~0.04", f"{p['eu_at_half_error']:.3f}"],
            [f"{p['label']} OoD job fraction", "0.7% (Theta)", f"{p['ood_fraction'] * 100:.2f}%"],
            [f"{p['label']} OoD error share", "2.4% / 2.1%", f"{p['ood_error_share'] * 100:.2f}%"],
            [f"{p['label']} OoD enrichment", "~3x", f"{p['ood_enrichment']:.1f}x"],
            [f"{p['label']} tagged truly-novel rate", "-", f"{p['tagged_truth_rate'] * 100:.0f}%"],
        ]
    record(
        "fig5_au_eu",
        format_table(["quantity", "paper", "measured"], rows,
                     title="Fig 5 + §VIII — uncertainty decomposition and OoD attribution"),
    )

    for p in panels:
        assert p["au_median"] > p["eu_median"], f"{p['label']}: AU must dominate EU in-distribution"
        assert p["ood_error_share"] > p["ood_fraction"], "tagged jobs must be error-enriched"
        assert p["ood_enrichment"] > 1.1
    # the strong (~3x) enrichment of §VIII shows on the quieter platform;
    # Cori's heavier ambient error tail dilutes the relative enrichment
    assert panels[0]["ood_enrichment"] > 2.0
