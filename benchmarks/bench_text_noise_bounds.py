"""§IX text numbers — expected I/O variability, and the normal-vs-t ablation.

Paper: a Theta job should expect throughput within ±5.71 % of prediction
68 % of the time (±10.56 % at 95 %); Cori ±7.21 %/±14.99 %.  The Δt = 0
residuals follow a Student-t (small duplicate sets), and skipping Bessel's
correction underestimates σ — both effects are demonstrated here as the
paper derives them.
"""

import numpy as np

from repro.taxonomy import noise_bound
from repro.taxonomy.tdist import fit_t_distribution, pooled_residuals
from repro.data.duplicates import concurrent_subsets
from repro.viz import format_table

from conftest import record


def test_text_noise_bounds_and_bessel_ablation(benchmark, theta, cori):
    def bounds():
        return (
            noise_bound(theta.dataset.y, theta.dups, theta.dataset.start_time),
            noise_bound(cori.dataset.y, cori.dups, cori.dataset.start_time),
        )

    nb_t, nb_c = benchmark.pedantic(bounds, rounds=1, iterations=1)

    # ablation: Bessel correction on/off (DESIGN.md §6.3)
    subsets = concurrent_subsets(theta.dups, theta.dataset.start_time)
    raw = pooled_residuals(theta.dataset.y, subsets, correct=False)
    corrected = pooled_residuals(theta.dataset.y, subsets, correct=True)
    sigma_raw = fit_t_distribution(raw).sigma
    sigma_corr = fit_t_distribution(corrected).sigma

    rows = [
        ["Theta 68% band", "±5.71%", f"±{nb_t.band_68_pct:.2f}%"],
        ["Theta 95% band", "±10.56%", f"±{nb_t.band_95_pct:.2f}%"],
        ["Cori 68% band", "±7.21%", f"±{nb_c.band_68_pct:.2f}%"],
        ["Cori 95% band", "±14.99%", f"±{nb_c.band_95_pct:.2f}%"],
        ["Δt=0 sets of size 2 (Theta)", "70%", f"{nb_t.set_size_share_2 * 100:.0f}%"],
        ["Δt=0 sets ≤6 (Theta)", "96%", f"{nb_t.set_size_share_le6 * 100:.0f}%"],
        ["σ without Bessel (dex)", "biased low", f"{sigma_raw:.4f}"],
        ["σ with Bessel (dex)", "correct", f"{sigma_corr:.4f}"],
        ["t-fit df (Theta Δt=0)", "t-like (small sets)", f"{nb_t.tfit.df:.1f}"],
    ]
    record("text_noise_bounds", format_table(["quantity", "paper", "measured"], rows,
                                             title="§IX — system I/O variability"))

    assert nb_c.band_68_pct > nb_t.band_68_pct
    assert sigma_corr > sigma_raw, "Bessel correction must widen the estimate"
    # the correction factor for mostly-pairs populations is ~sqrt(2)
    assert 1.1 < sigma_corr / sigma_raw < 1.6
