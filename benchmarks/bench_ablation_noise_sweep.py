"""Ablation — ground-truth validation of the §IX noise litmus test.

Only a simulator can run this: sweep the platform's *injected* inherent
noise σ and verify that (1) the concurrent-duplicate litmus estimate tracks
the injection, and (2) a tuned model's achievable error floor rises with
it.  This is the validation the paper could not perform on production
systems, and the strongest evidence that the litmus test measures what it
claims to measure.
"""

from dataclasses import replace

import numpy as np

from repro.config import theta_config
from repro.data import build_dataset, find_duplicate_sets, train_val_test_split
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.metrics import median_abs_pct_error
from repro.taxonomy import noise_bound
from repro.viz import format_table

from conftest import record

SIGMAS = (0.008, 0.0195, 0.045)
JOBS = 5000


def _one(sigma: float) -> dict:
    cfg = theta_config(n_jobs=JOBS)
    cfg = replace(cfg, platform=replace(cfg.platform, noise_sigma=sigma))
    ds = build_dataset(cfg)
    dups = find_duplicate_sets(ds.frames["posix"])
    nb = noise_bound(ds.y, dups, ds.start_time)

    from repro.data import feature_matrix

    X, _ = feature_matrix(ds, "posix+time")
    train, val, test = train_val_test_split(len(ds), rng=0)
    model = GradientBoostingRegressor(
        n_estimators=300, max_depth=10, learning_rate=0.05,
        min_child_weight=6, subsample=0.8, colsample_bytree=0.8, loss="squared",
    ).fit(X[np.concatenate([train, val])], ds.y[np.concatenate([train, val])])
    err = median_abs_pct_error(ds.y[test], model.predict(X[test]))
    fn_sigma = float(np.std(ds.meta["fn_dex"]))
    return {"estimate": nb.sigma_dex, "injected_fn": fn_sigma, "model_err": err}


def test_ablation_noise_sweep(benchmark):
    results = benchmark.pedantic(
        lambda: {s: _one(s) for s in SIGMAS}, rounds=1, iterations=1
    )
    rows = [
        [f"{s:.4f}", f"{r['injected_fn']:.4f}", f"{r['estimate']:.4f}", f"{r['model_err']:.2f}%"]
        for s, r in results.items()
    ]
    record(
        "ablation_noise_sweep",
        format_table(
            ["injected σ (config)", "realized fn σ", "litmus σ estimate", "tuned model err"],
            rows,
            title="Ablation — noise injection vs litmus estimate vs achievable error",
        ),
    )

    estimates = [results[s]["estimate"] for s in SIGMAS]
    errors = [results[s]["model_err"] for s in SIGMAS]
    # the litmus estimate must rise monotonically with the injection...
    assert estimates[0] < estimates[1] < estimates[2]
    # ...never fall below the pure-noise component it contains...
    for s, r in results.items():
        assert r["estimate"] > 0.8 * r["injected_fn"]
    # ...and the achievable model error must track the noise floor
    assert errors[2] > errors[0]