"""Ablation — placement policy vs the idiosyncratic contention spread.

§IX argues the ζl term is unobservable because identical jobs land on
different nodes/OSTs and meet different neighbour traffic.  With the
scheduler substrate we can quantify exactly that: schedule a trace
containing twin jobs under each placement policy, stripe everything over
OSTs, and measure how differently the twins' stripe neighbourhoods are
loaded.  Tighter placement shrinks the spread; no policy removes it —
which is why the engine models placement luck as irreducible.
"""

import numpy as np

from repro.scheduler import BatchScheduler, Dragonfly, OstStriper, PlacementPolicy
from repro.scheduler.ost import per_ost_load
from repro.viz import format_table

from conftest import record

N_JOBS = 240
N_TWIN = 60
N_OST = 56


def _trace(topo, rng):
    submit = np.sort(rng.uniform(0.0, 10 * 3600.0, N_JOBS))
    nodes = np.minimum(rng.geometric(0.04, N_JOBS), topo.n_nodes // 4)
    wall = rng.lognormal(7.6, 0.7, N_JOBS)
    twin_of = rng.integers(0, N_JOBS - N_TWIN, N_TWIN)
    submit[-N_TWIN:] = submit[twin_of] + 1.0
    nodes[-N_TWIN:] = nodes[twin_of]
    wall[-N_TWIN:] = wall[twin_of]
    order = np.argsort(submit)
    # remember where each twin pair ended up after sorting
    ids = np.arange(N_JOBS)[order]
    pairs = [(int(np.where(ids == a)[0][0]), int(np.where(ids == N_JOBS - N_TWIN + k)[0][0]))
             for k, a in enumerate(twin_of)]
    return submit[order], nodes[order], wall[order], pairs


def _twin_load_gap(jobs, pairs, rng) -> np.ndarray:
    """|neighbour pressure difference| between twins via OST striping."""
    striper = OstStriper(N_OST, policy="roundrobin", seed=int(rng.integers(1 << 30)))
    assigns = [striper.assign(8) for _ in jobs]
    demands = np.array([j.n_nodes for j in jobs], dtype=float)
    gaps = []
    for a, b in pairs:
        # pressure on each twin's stripe from jobs overlapping it in time
        def pressure(idx: int) -> float:
            me = jobs[idx]
            concurrent = [
                k for k, other in enumerate(jobs)
                if k != idx
                and other.start_time < me.end_time
                and other.end_time > me.start_time
            ]
            if not concurrent:
                return 0.0
            load = per_ost_load([assigns[k] for k in concurrent], demands[concurrent], N_OST)
            return float(load[assigns[idx].ost_ids].mean())

        gaps.append(abs(pressure(a) - pressure(b)))
    return np.asarray(gaps)


def test_ablation_placement(benchmark):
    rng = np.random.default_rng(11)
    topo = Dragonfly(n_groups=8, routers_per_group=12, nodes_per_router=4)
    submit, nodes, wall, pairs = _trace(topo, rng)

    def run():
        out = {}
        for policy in ("cluster", "contiguous", "random"):
            sched = BatchScheduler(PlacementPolicy(topo, policy, seed=3))
            jobs, stats = sched.run(submit, nodes, wall)
            loc = np.array([j.locality for j in jobs])
            gaps = _twin_load_gap(jobs, pairs, np.random.default_rng(5))
            out[policy] = {
                "wait": stats.mean_wait,
                "loc_mean": float(loc.mean()),
                "loc_spread": float(loc.std()),
                "twin_gap_med": float(np.median(gaps)),
                "twin_gap_p90": float(np.percentile(gaps, 90)),
            }
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [p, f"{r['wait']:.0f}s", f"{r['loc_mean']:.2f}", f"{r['loc_spread']:.2f}",
         f"{r['twin_gap_med']:.2f}", f"{r['twin_gap_p90']:.2f}"]
        for p, r in res.items()
    ]
    record(
        "ablation_placement",
        format_table(
            ["policy", "mean wait", "hops mean", "hops spread", "twin Δload p50", "twin Δload p90"],
            rows,
            title="Ablation — placement policy vs twin-job contention gap (ζl idiosyncrasy)",
        ),
    )

    # every policy leaves a non-zero twin gap: ζl is irreducible (§IX)
    for r in res.values():
        assert r["twin_gap_med"] > 0.0
    # smarter placement packs allocations tighter than random scatter
    assert res["cluster"]["loc_mean"] < res["random"]["loc_mean"]