"""Fig. 1a — XGBoost hyperparameter heatmap (n_estimators × max_depth).

Paper: an exhaustive sweep (8046 models over 4 hyperparameters) finds the
tuned model at 10.51 % median error, within half a point of the duplicate
bound (10.01 %); the XGBoost defaults (100 trees, depth 6) are clearly
worse.  We regenerate the (trees × depth) plane of that sweep and check the
same shape: the tuned corner beats the defaults and approaches the bound.
"""

import os

import numpy as np

from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.hpo import grid_search, heatmap_from_results
from repro.ml.metrics import median_abs_pct_error
from repro.taxonomy import application_bound
from repro.viz import ascii_heatmap, format_table

from conftest import FULL, record

GRID = {
    "n_estimators": (50, 150, 400, 800) if FULL else (50, 150, 400),
    "max_depth": (3, 6, 10, 15, 21) if FULL else (4, 6, 10),
    "learning_rate": (0.05,),
    "min_child_weight": (6,),
    "subsample": (0.8,),
    "colsample_bytree": (0.8,),
    "loss": ("squared",),
}


def test_fig1a_hpo_heatmap(benchmark, theta):
    ds = theta.dataset
    train, val, test = theta.splits
    sub = train[: 5000] if not FULL else train

    def sweep():
        return grid_search(
            GradientBoostingRegressor, GRID,
            theta.X_app[sub], ds.y[sub], theta.X_app[val], ds.y[val],
            refit=False,
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    M, xs, ys = heatmap_from_results(result.results, "n_estimators", "max_depth")
    M_pct = (10.0**M - 1.0) * 100.0

    bound = application_bound(ds.frames["posix"], ds.y, dups=theta.dups)
    default_err = theta.err(theta.baseline, theta.X_app, test)
    tuned_err = theta.err(theta.tuned, theta.X_app, test)

    table = format_table(
        ["quantity", "paper", "measured"],
        [
            ["default XGBoost (100 trees, depth 6) test err %", "(worse than tuned)", default_err],
            ["tuned model test err %", 10.51, tuned_err],
            ["duplicate bound %", 10.01, bound.median_abs_pct],
            ["tuned within (x) of bound", "1.05x", f"{tuned_err / bound.median_abs_pct:.2f}x"],
        ],
        title="Fig 1a — hyperparameter sweep (Theta)",
    )
    heat = ascii_heatmap(M_pct, xs, ys, title="validation median |%| error (rows=max_depth, cols=n_estimators)")
    record("fig1a_hpo_heatmap", table + "\n\n" + heat)

    # shape assertions: tuning helps, and the tuned model approaches the bound
    assert tuned_err < default_err
    assert tuned_err < 1.8 * bound.median_abs_pct
    # the heatmap's best cell beats its worst by a clear margin
    assert np.nanmin(M_pct) < 0.8 * np.nanmax(M_pct)
