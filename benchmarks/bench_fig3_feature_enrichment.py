"""Fig. 3 — POSIX vs POSIX+MPI-IO vs POSIX+Cobalt error distributions.

Paper (Theta): MPI-IO features never help (10.94 → 10.97 % train;
15.91 → 15.99 % test) because everything MPI-IO does is already visible at
the POSIX level; Cobalt features lower *training* error via memorization of
start/end timestamps (no two jobs stay duplicates) and lower test error
through their timing content (12.54 % vs 15.91 %).  The timing channel is
interpolation: it can only help on an in-distribution (random) split, where
the test period is covered by training jobs — under a deployment-style
temporal split the model cannot extrapolate future I/O weather (that story
is Fig. 1d).  We regenerate all six medians on the shared random split.
"""

import numpy as np

from repro.data import feature_matrix, find_duplicate_sets
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.metrics import median_abs_pct_error
from repro.viz import format_table

from conftest import BASELINE_PARAMS, record


def test_fig3_feature_enrichment(benchmark, theta):
    ds = theta.dataset
    # in-distribution split: timestamps can interpolate the weather the
    # training set already witnessed (paper's Cobalt test gain)
    train, _, test = theta.splits

    def run_all():
        out = {}
        for fs in ("posix", "posix+mpiio", "posix+cobalt"):
            X, _ = feature_matrix(ds, fs)
            model = GradientBoostingRegressor(**BASELINE_PARAMS)
            model.fit(X[train], ds.y[train])
            out[fs] = (
                median_abs_pct_error(ds.y[train], model.predict(X[train])),
                median_abs_pct_error(ds.y[test], model.predict(X[test])),
            )
        return out

    res = benchmark.pedantic(run_all, rounds=1, iterations=1)

    dup_posix = find_duplicate_sets(ds.frames["posix"]).n_sets
    Xc, _ = feature_matrix(ds, "posix+cobalt", include_derived=False)
    dup_cobalt = find_duplicate_sets(Xc).n_sets

    rows = [
        ["POSIX train/test %", "10.94 / 15.91", f"{res['posix'][0]:.2f} / {res['posix'][1]:.2f}"],
        ["POSIX+MPI-IO train/test %", "10.97 / 15.99", f"{res['posix+mpiio'][0]:.2f} / {res['posix+mpiio'][1]:.2f}"],
        ["POSIX+Cobalt test %", "12.54", f"{res['posix+cobalt'][1]:.2f}"],
        ["duplicate sets (POSIX feats)", "3509", dup_posix],
        ["duplicate sets (+Cobalt feats)", "0 (timestamps unique)", dup_cobalt],
    ]
    record(
        "fig3_feature_enrichment",
        format_table(["quantity", "paper (Theta)", "measured"], rows,
                     title="Fig 3 — feature-set enrichment (Theta, temporal split)"),
    )

    # shape: MPI-IO is redundant (within noise of POSIX-only)
    assert abs(res["posix+mpiio"][1] - res["posix"][1]) < 0.15 * res["posix"][1]
    # Cobalt's timestamps help generalization through the time channel
    assert res["posix+cobalt"][1] < res["posix"][1]
    # Cobalt destroys duplicate structure entirely (§VI.C)
    assert dup_cobalt == 0
