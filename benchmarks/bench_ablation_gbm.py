"""Ablation (DESIGN.md §6.1) — histogram resolution and loss of the GBM.

Checks that the design choices baked into the reproduction's GBM are not
load-bearing for the paper's conclusions: 64 vs 128 quantile bins land
within noise of each other, and Huber vs squared loss changes the median
error only marginally on this (heavy-tailed) target.
"""

import numpy as np

from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.metrics import median_abs_pct_error
from repro.viz import format_table

from conftest import record

BASE = dict(n_estimators=200, max_depth=8, learning_rate=0.07, min_child_weight=6,
            subsample=0.8, colsample_bytree=0.8)


def test_ablation_gbm_bins_and_loss(benchmark, theta):
    ds = theta.dataset
    train, val, test = theta.splits
    sub = train[:5000]

    def run():
        out = {}
        for label, extra in (
            ("bins=32", dict(n_bins=32, loss="squared")),
            ("bins=64", dict(n_bins=64, loss="squared")),
            ("bins=128", dict(n_bins=128, loss="squared")),
            ("huber", dict(n_bins=64, loss="huber", huber_delta=0.12)),
        ):
            model = GradientBoostingRegressor(**BASE, **extra)
            model.fit(theta.X_app[sub], ds.y[sub])
            out[label] = median_abs_pct_error(ds.y[test], model.predict(theta.X_app[test]))
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_gbm",
        format_table(["config", "test err %"], [[k, v] for k, v in res.items()],
                     title="Ablation — GBM histogram bins and loss (Theta)"),
    )
    errs = list(res.values())
    assert max(errs) < 1.35 * min(errs), "conclusions must not hinge on bin count/loss"
