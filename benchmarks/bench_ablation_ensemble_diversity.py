"""Ablation (DESIGN.md §6.2) — ensemble diversity source for EU separation.

The paper (§VIII) argues architecture+hyperparameter diversity (AutoDEUQ)
sharpens the epistemic signal versus seed-only ensembles.  We measure the
EU contrast between truly-novel (OoD) and in-distribution test jobs for
both diversity modes.
"""

import numpy as np

from repro.ml.ensemble import DeepEnsemble
from repro.viz import format_table

from conftest import record


def test_ablation_ensemble_diversity(benchmark, theta):
    ds = theta.dataset
    train, val, test = theta.splits
    fit_idx = np.concatenate([train, val])
    truth = ds.meta["is_ood"][test]
    if truth.sum() < 3:
        import pytest

        pytest.skip("too few OoD jobs in the test split at this scale")

    def run():
        out = {}
        for mode in ("seed", "arch"):
            ens = DeepEnsemble(n_members=4, diversity=mode, epochs=18, random_state=0)
            ens.fit(theta.X_app[fit_idx], ds.y[fit_idx])
            eu = ens.decompose(theta.X_app[test]).epistemic_std
            contrast = float(np.median(eu[truth]) / max(np.median(eu[~truth]), 1e-9))
            out[mode] = contrast
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_ensemble_diversity",
        format_table(
            ["diversity", "EU contrast (OoD / in-dist medians)"],
            [[k, f"{v:.2f}x"] for k, v in res.items()],
            title="Ablation — ensemble diversity source (Theta)",
        ),
    )
    # Both modes must separate truly novel jobs from in-distribution ones.
    # At simulated scale the seed-only ensemble often already saturates the
    # EU signal (members share one architecture, so any disagreement is
    # novelty); architecture diversity adds in-distribution disagreement
    # too, so we do not assert arch > seed — only that each mode works.
    assert res["arch"] > 1.3
    assert res["seed"] > 1.3
