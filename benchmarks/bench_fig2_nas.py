"""Fig. 2 — neural architecture search approaching the estimated bound.

Paper (Cori): 10 generations × 30 networks; errors scatter downward toward
the duplicate-estimated lower bound (14.15 %), the best network reaches
14.3 %, and NAS improves the incumbent in only ~6 generations.  We run the
AgEBO-style search at reduced scale and check the same dynamics.
"""

import numpy as np

from repro.ml.agebo import AgingEvolutionSearch
from repro.ml.metrics import dex_to_pct
from repro.taxonomy import application_bound
from repro.viz import format_table

from conftest import FULL, record


def test_fig2_nas_approaches_bound(benchmark, cori):
    ds = cori.dataset
    train, val, test = cori.splits
    sub = train[: 6000] if not FULL else train

    nas = AgingEvolutionSearch(
        population=30 if FULL else 8,
        generations=10 if FULL else 5,
        epochs=30 if FULL else 12,
        seed=0,
    )
    benchmark.pedantic(
        lambda: nas.run(cori.X_app[sub], ds.y[sub], cori.X_app[val], ds.y[val]),
        rounds=1, iterations=1,
    )

    bound = application_bound(ds.frames["posix"], ds.y, dups=cori.dups)
    curve = [dex_to_pct(v) for v in nas.history.best_per_generation()]
    best_pct = dex_to_pct(nas.best_score_)

    rows = [[f"gen {g}", f"{v:.2f}%"] for g, v in enumerate(curve)]
    rows += [
        ["best network (val) %", f"{best_pct:.2f}"],
        ["paper best (test)", "14.30"],
        ["estimated bound %", f"{bound.median_abs_pct:.2f} (paper 14.15)"],
        ["generations that improved", f"{nas.history.improvements()} (paper ~6)"],
    ]
    record(
        "fig2_nas",
        format_table(["quantity", "value"], rows,
                     title="Fig 2 — NAS generations vs estimated lower bound (Cori)"),
    )

    assert curve[-1] <= curve[0], "NAS must not end worse than generation 0"
    assert best_pct < 3.0 * bound.median_abs_pct, "search must land within a few x of the bound"
    assert 1 <= nas.history.improvements() <= nas.generations
