"""Shared fixtures for the reproduction benches.

Heavy artifacts (datasets, tuned/golden models, ensembles) are built once
per session and shared across benches; each bench then regenerates one
figure or table of the paper and records paper-vs-measured rows under
``benchmarks/results/``.

Scale control: default sizes run the whole suite on one core in minutes;
``REPRO_FULL=1`` switches to paper-scale sweeps (slower, tighter numbers).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest

from repro.config import cori_config, theta_config
from repro.data import build_dataset, feature_matrix, find_duplicate_sets, train_val_test_split
from repro.ml.ensemble import DeepEnsemble
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.metrics import median_abs_pct_error

FULL = os.environ.get("REPRO_FULL", "0") == "1"
RESULTS_DIR = Path(__file__).parent / "results"
RESULTS_DIR.mkdir(exist_ok=True)

THETA_JOBS = 40_000 if FULL else 8_000
CORI_JOBS = 120_000 if FULL else 12_000

#: the known-good tuned configuration (found by the Fig. 1a sweep)
TUNED_PARAMS = dict(
    n_estimators=600 if FULL else 400,
    max_depth=10,
    learning_rate=0.05,
    min_child_weight=6,
    subsample=0.8,
    colsample_bytree=0.8,
    loss="squared",
)
BASELINE_PARAMS = dict(n_estimators=100, max_depth=6, learning_rate=0.3, loss="squared")  # XGBoost defaults


def record(name: str, text: str) -> None:
    """Print a bench table and persist it under benchmarks/results/."""
    print("\n" + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@dataclass
class PlatformArtifacts:
    """Everything a bench needs for one platform."""

    dataset: object
    dups: object
    splits: tuple[np.ndarray, np.ndarray, np.ndarray]
    X_app: np.ndarray
    X_time: np.ndarray
    baseline: GradientBoostingRegressor
    tuned: GradientBoostingRegressor
    golden: GradientBoostingRegressor

    def err(self, model, X, index) -> float:
        return median_abs_pct_error(self.dataset.y[index], model.predict(X[index]))


def _build(config) -> PlatformArtifacts:
    ds = build_dataset(config)
    dups = find_duplicate_sets(ds.frames["posix"])
    splits = train_val_test_split(len(ds), rng=1)
    train, val, test = splits
    fit_idx = np.concatenate([train, val])
    X_app, _ = feature_matrix(ds, "posix")
    X_time, _ = feature_matrix(ds, "posix+time")

    baseline = GradientBoostingRegressor(**BASELINE_PARAMS)
    baseline.fit(X_app[train], ds.y[train])
    tuned = GradientBoostingRegressor(**TUNED_PARAMS)
    tuned.fit(X_app[fit_idx], ds.y[fit_idx])
    golden = GradientBoostingRegressor(**TUNED_PARAMS)
    golden.fit(X_time[fit_idx], ds.y[fit_idx])
    return PlatformArtifacts(
        dataset=ds, dups=dups, splits=splits,
        X_app=X_app, X_time=X_time,
        baseline=baseline, tuned=tuned, golden=golden,
    )


@pytest.fixture(scope="session")
def theta() -> PlatformArtifacts:
    return _build(theta_config(n_jobs=THETA_JOBS))


@pytest.fixture(scope="session")
def cori() -> PlatformArtifacts:
    return _build(cori_config(n_jobs=CORI_JOBS))


#: EU-tag quantile: the paper tags ~0.7 % of test jobs, matching the
#: post-cutoff share of truly novel applications in a random split
OOD_QUANTILE = 0.993


@pytest.fixture(scope="session")
def theta_ensemble(theta) -> DeepEnsemble:
    train, val, _ = theta.splits
    fit_idx = np.concatenate([train, val])
    ens = DeepEnsemble(n_members=5, diversity="arch", epochs=40, random_state=0)
    ens.fit(theta.X_app[fit_idx], theta.dataset.y[fit_idx])
    return ens


@pytest.fixture(scope="session")
def cori_ensemble(cori) -> DeepEnsemble:
    train, val, _ = cori.splits
    fit_idx = np.concatenate([train, val])
    ens = DeepEnsemble(n_members=5, diversity="arch", epochs=32, random_state=0)
    ens.fit(cori.X_app[fit_idx], cori.dataset.y[fit_idx])
    return ens
