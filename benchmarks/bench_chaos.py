"""Chaos/scale soak benchmark: the serving stack under storm conditions.

Registers hundreds of model versions across a sharded cluster, replays a
Zipfian multi-tenant bursty request stream, and keeps faults coming the
whole time: shard kills with bursts still in flight (a supervisor
respawn storm under live promote/rollback churn), poisoned wrong-width
request floods, and simulator-driven drift on a subset of tenants (the
platform-noise / weather / workload knobs of §IV moving under the
monitoring plane's windows).  The SLO autoscaler runs live, steering the
fleet width from the windowed p99.

The gates are the serving stack's survival claims, not throughput:

* zero client-visible transient errors — every routine request either
  scores or is recovered by the retry plane;
* bit-identity — every survivor matches a direct predict of a
  registered version of its tenant exactly;
* poisoned floods fail fast with coded client errors;
* drift on the injected tenants raises monitor alerts.

p50/p99/p999 tails (client wall clock and the fleet's bounded latency
rings) land in ``benchmarks/results/BENCH_chaos.json`` — one entry per
run, the same trajectory discipline as ``BENCH_serve.json``.

Runs standalone (``python benchmarks/bench_chaos.py``) or via an
explicit pytest path; the same soak is reachable as ``repro
chaos-bench``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.serve.bench import record_trajectory_entry
from repro.serve.chaos import run_chaos_bench

RESULTS_DIR = Path(__file__).parent / "results"

N_NAMES = 25
VERSIONS_PER_NAME = 20          # 500 registered versions: the scale gate
N_REQUESTS = 2000
N_KILLS = 6
MAX_SHARDS = 4
SLO_TARGET_MS = 50.0


def run() -> dict:
    t0 = time.perf_counter()
    r = run_chaos_bench(
        n_names=N_NAMES,
        versions_per_name=VERSIONS_PER_NAME,
        n_requests=N_REQUESTS,
        n_kills=N_KILLS,
        max_shards=MAX_SHARDS,
        slo_target_ms=SLO_TARGET_MS,
        source="sim",
    )
    r["bench_wall_s"] = round(time.perf_counter() - t0, 2)
    record_trajectory_entry({"chaos": r}, RESULTS_DIR, filename="BENCH_chaos.json")

    lines = [
        "CHAOS (storm soak: kills + churn + poison + drift, autoscaler live)",
        f"scale: {r['n_versions']} versions over {r['n_names']} names, "
        f"{r['completed']}/{r['n_requests']} requests, shards "
        f"{r['n_shards_initial']} -> {r['n_shards_final']} "
        f"(ups {r['scale_ups']} / downs {r['scale_downs']} / "
        f"failed {r['scale_failures']})",
        f"faults: {r['kills']} kills, {r['respawns']} respawns, "
        f"{r['churns']} churns, {r['retries']} retries "
        f"({r['recovered']} recovered, {r['breaker_opens']} breaker opens), "
        f"{r['poison_failed_fast']}/{r['poison_sent']} poison failed fast, "
        f"{r['drift_alerts']} drift alerts",
        f"survival: {r['client_errors']} client-visible errors, "
        f"{r['mismatches']} bit-identity mismatches",
        f"tails: client p50 {r['p50_ms']:.1f} / p99 {r['p99_ms']:.1f} / "
        f"p999 {r['p999_ms']:.1f} ms; fleet ring p50 {r['fleet_p50_ms']:.2f} "
        f"/ p99 {r['fleet_p99_ms']:.2f} / p999 {r['fleet_p999_ms']:.2f} ms "
        f"(wall {r['bench_wall_s']:.1f}s)",
    ]
    table = "\n".join(lines)
    print("\n" + table)
    (RESULTS_DIR / "chaos.txt").write_text(table + "\n")
    return r


def test_chaos_bench():
    r = run()
    # the survival gates — the whole point of the harness
    assert r["client_errors"] == 0, r["client_error_codes"]
    assert r["mismatches"] == 0
    assert r["completed"] == r["n_requests"]
    # storm scale actually reached
    assert r["n_versions"] >= 500
    assert r["kills"] >= 5
    assert r["poison_sent"] > 0
    assert r["poison_failed_fast"] == r["poison_sent"]
    assert r["drift_alerts"] >= 1
    # tails recorded, ordered, non-vacuous
    assert 0.0 < r["p50_ms"] <= r["p99_ms"] <= r["p999_ms"]
    assert 0.0 < r["fleet_p50_ms"] <= r["fleet_p99_ms"] <= r["fleet_p999_ms"]


if __name__ == "__main__":
    print(json.dumps(run(), indent=2))
