"""Ablation — OoD detector comparison (ensemble EU vs cheaper lenses).

§VIII commits to deep-ensemble epistemic uncertainty for OoD tagging.  Was
the ensemble necessary?  We compare four detectors on the same task —
"rank test jobs so that truly novel applications come first" — scored by
the median rank percentile they assign to the truly novel jobs:

* deep-ensemble EU (the paper's choice, AutoDEUQ-style)
* MC-dropout EU (one network, stochastic masks)
* kNN distance to the training set (no model at all)
* random-forest tree disagreement
"""

import numpy as np

from repro.ml.forest import RandomForestRegressor
from repro.ml.mcdropout import MCDropoutRegressor
from repro.ml.neighbors import knn_novelty
from repro.viz import format_table

from conftest import record


def _rank_pct(scores: np.ndarray, truth: np.ndarray) -> float:
    """Median percentile rank (0-100) of truly novel jobs, by score."""
    order = np.argsort(np.argsort(scores))
    pct = 100.0 * order / max(scores.size - 1, 1)
    return float(np.median(pct[truth]))


def test_ablation_ood_detectors(benchmark, theta, theta_ensemble):
    ds = theta.dataset
    train, val, test = theta.splits
    fit_idx = np.concatenate([train, val])
    truth = ds.meta["is_ood"][test]
    if truth.sum() < 3:
        import pytest

        pytest.skip("too few truly novel jobs in the test split")

    X = theta.X_app

    def run():
        out = {}
        out["ensemble EU"] = _rank_pct(
            theta_ensemble.decompose(X[test]).epistemic_std, truth
        )
        mc = MCDropoutRegressor(hidden=(128,), dropout=0.1, epochs=30, n_passes=12,
                                random_state=0)
        mc.fit(X[fit_idx], ds.y[fit_idx])
        out["MC dropout EU"] = _rank_pct(mc.decompose(X[test]).epistemic_std, truth)
        out["kNN distance"] = _rank_pct(knn_novelty(X[fit_idx], X[test], k=10), truth)
        forest = RandomForestRegressor(n_estimators=80, max_depth=12, random_state=0)
        forest.fit(X[fit_idx], ds.y[fit_idx])
        _, var = forest.predict_dist(X[test])
        out["forest disagreement"] = _rank_pct(var, truth)
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[k, f"{v:.1f}"] for k, v in sorted(res.items(), key=lambda kv: -kv[1])]
    record(
        "ablation_ood_detectors",
        format_table(
            ["detector", "median novelty rank of true OoD (100=best)"],
            rows,
            title=f"Ablation — OoD detectors (Theta, {int(truth.sum())} truly novel test jobs)",
        ),
    )

    # the paper's detector must work...
    assert res["ensemble EU"] > 90.0
    # ...and the cheap geometric lens is expected to work here too — novel
    # apps sit far outside the training hull by construction
    assert res["kNN distance"] > 90.0