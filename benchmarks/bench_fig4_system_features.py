"""Fig. 4 — POSIX vs POSIX+start-time vs POSIX+Lustre.

Paper: adding the single start-time feature removes 30.8 % of Theta's error
(10.96 → 7.88 %) and 40 % of Cori's (16.49 → 10.02 %); on Cori, real LMT
logs recover almost exactly the same error (9.96 %), showing the golden
time model's estimate is reached through actual system telemetry.  We
regenerate all five medians and both crossovers.
"""

import numpy as np

from repro.data import feature_matrix
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.metrics import median_abs_pct_error
from repro.viz import format_table

from conftest import TUNED_PARAMS, record


def test_fig4_system_features(benchmark, theta, cori):
    train_t, val_t, test_t = theta.splits
    train_c, val_c, test_c = cori.splits
    fit_c = np.concatenate([train_c, val_c])

    e_theta_posix = theta.err(theta.tuned, theta.X_app, test_t)
    e_theta_time = theta.err(theta.golden, theta.X_time, test_t)
    e_cori_posix = cori.err(cori.tuned, cori.X_app, test_c)
    e_cori_time = cori.err(cori.golden, cori.X_time, test_c)

    def fit_lmt():
        X_lmt, _ = feature_matrix(cori.dataset, "posix+lmt")
        model = GradientBoostingRegressor(**TUNED_PARAMS)
        model.fit(X_lmt[fit_c], cori.dataset.y[fit_c])
        return median_abs_pct_error(cori.dataset.y[test_c], model.predict(X_lmt[test_c]))

    e_cori_lmt = benchmark.pedantic(fit_lmt, rounds=1, iterations=1)

    drop_t = (e_theta_posix - e_theta_time) / e_theta_posix * 100
    drop_c = (e_cori_posix - e_cori_time) / e_cori_posix * 100
    rows = [
        ["Theta POSIX %", 10.96, e_theta_posix],
        ["Theta POSIX+time %", 7.88, e_theta_time],
        ["Theta error drop from time", "30.8%", f"{drop_t:.1f}%"],
        ["Cori POSIX %", 16.49, e_cori_posix],
        ["Cori POSIX+time %", 10.02, e_cori_time],
        ["Cori POSIX+LMT %", 9.96, e_cori_lmt],
        ["Cori error drop from time", "40%", f"{drop_c:.1f}%"],
        ["LMT vs time gap %", "0.06", f"{abs(e_cori_lmt - e_cori_time):.2f}"],
    ]
    record(
        "fig4_system_features",
        format_table(["quantity", "paper", "measured"], rows,
                     title="Fig 4 — system features (start time / LMT)"),
    )

    # shape: the start-time feature always helps, on both platforms
    assert e_theta_time < e_theta_posix
    assert e_cori_time < e_cori_posix
    # LMT recovers approximately what the golden time model predicted
    assert abs(e_cori_lmt - e_cori_time) < 0.35 * e_cori_time
    # Cori benefits more than Theta (its weather is wilder)
    assert drop_c > drop_t - 8.0
