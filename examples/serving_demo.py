"""Serving the I/O models: registry, micro-batching, and cached rollout.

Walks the full serving story on a simulated Theta workload:

1. fit a forest on the historical window and **register** it (the registry
   freezes every array the model owns — from then on it is an immutable,
   promotable artifact),
2. stand up an :class:`~repro.serve.service.InferenceService` and stream
   single-job requests through the **micro-batcher**, checking the answers
   are bit-identical to direct predicts,
3. replay duplicate jobs against the **prediction cache** (HPC streams are
   ~30 % duplicates, §VI.A — hits are free),
4. stage a retrained v2, **promote** it (cache invalidates itself), watch
   the same request get the new answer, then **rollback**,
5. front *two* per-system models (Theta + Cori — per-system drift, §VIII)
   with one :class:`~repro.serve.router.ServingGateway`, promote and roll
   back the Theta model **while traffic flows** to both, and let the
   :class:`~repro.serve.adaptive.AdaptiveBatchTuner` steer each name's
   batch limits toward a latency target,
6. scale past one process: a two-shard
   :class:`~repro.serve.shard.ShardedServingCluster` warm-starts gateway
   replicas from the same registry (pickled frozen models), hash-routes
   each name's traffic to its owning shard, applies a promote/rollback
   broadcast cluster-wide, and fans one large batch row-parallel across
   both worker processes — all of it bit-identical to direct predicts,
7. close the loop with the **online monitoring plane**: a
   :class:`~repro.serve.monitor.MonitoringPlane` taps the gateway,
   windows the live feature stream against the registry's
   training-reference snapshot, and when simulator-injected drift (a
   shifted application mix + noisier I/O weather — the paper's §VIII
   deployment scenario) pushes the windowed PSI over threshold, the
   policy engine auto-rolls production back; a retrained challenger then
   earns its promotion through shadow scoring on labeled outcomes.

Run with ``PYTHONPATH=src python examples/serving_demo.py``.
"""

import threading
import time
from dataclasses import replace

import numpy as np

from repro.config import preset
from repro.data import build_dataset, feature_matrix, temporal_split
from repro.ml.forest import RandomForestRegressor
from repro.ml.uncertainty import epistemic_sample
from repro.serve import (
    AdaptiveBatchTuner,
    InferenceService,
    ModelRegistry,
    MonitoringPlane,
    PsiThresholdRule,
    ServingGateway,
    ShadowWinnerRule,
    ShardedServingCluster,
)

print("simulating a Theta-like workload ...")
dataset = build_dataset(preset("theta", n_jobs=3000, seed=7))
X, _names = feature_matrix(dataset, "posix")
y = dataset.y
train, test = temporal_split(dataset.start_time, cutoff_frac=0.7)

print("fitting v1 forest on the historical window ...")
v1_model = RandomForestRegressor(n_estimators=120, max_depth=12, random_state=0)
v1_model.fit(X[train], y[train])

registry = ModelRegistry()
v1 = registry.register("io-throughput", v1_model, promote=True)
print(f"registered + promoted version {v1} "
      f"({registry.get_version('io-throughput').n_frozen_arrays} arrays frozen)")

with InferenceService(registry, "io-throughput", max_batch=64, max_delay=0.005) as svc:
    # --- micro-batched scoring of "arriving" jobs --------------------- #
    arriving = X[test[:500]]
    tickets = [svc.submit(row) for row in arriving]
    svc.flush()
    served = np.array([t.result(timeout=10.0) for t in tickets])
    direct = np.array([v1_model.predict(row[None, :])[0] for row in arriving])
    assert np.array_equal(served, direct)
    print(f"scored {len(arriving)} jobs micro-batched, bit-identical to direct predicts")

    # --- duplicate jobs hit the cache --------------------------------- #
    for row in arriving[:100]:  # resubmitted job signatures
        svc.predict(row, timeout=10.0)
    stats = svc.stats()
    print(f"after replaying 100 duplicates: {stats.summary()}")

    # --- staged rollout: promote v2, then roll back ------------------- #
    probe = arriving[0]
    v2_model = RandomForestRegressor(n_estimators=120, max_depth=12, random_state=1)
    v2_model.fit(X[np.concatenate([train, test[:500]])], y[np.concatenate([train, test[:500]])])
    v2 = registry.register("io-throughput", v2_model)
    print(f"staged version {v2} (production still v{registry.production_version('io-throughput')})")

    p1 = svc.predict(probe, timeout=10.0)
    registry.promote("io-throughput", v2)
    p2 = svc.predict(probe, timeout=10.0)
    assert p2 == v2_model.predict(probe[None, :])[0]
    registry.rollback("io-throughput")
    p3 = svc.predict(probe, timeout=10.0)
    assert p3 == p1
    print(f"probe job: v1={p1:.4f}  v2={p2:.4f}  rollback={p3:.4f}")
    print(f"final stats: {svc.stats().summary()}")

# --- multi-model gateway: per-system models under one front door ------ #
print("\nsimulating a Cori-like workload for a second per-system model ...")
cori = build_dataset(preset("cori", n_jobs=2500, seed=11))
Xc, _ = feature_matrix(cori, "posix")
yc = cori.y
cori_model = RandomForestRegressor(n_estimators=100, max_depth=12, random_state=3)
cori_model.fit(Xc[:2000], yc[:2000])
registry.register("cori-throughput", cori_model, promote=True)

with ServingGateway(registry, max_batch=64, max_delay=0.005) as gw:
    gw.configure("cori-throughput", max_batch=32)  # per-name override
    tuner = AdaptiveBatchTuner(gw, target_latency_ms=5.0, interval_s=0.05)
    tuner.start()

    theta_rows, cori_rows = X[test[:200]], Xc[2000:2200]
    stop = threading.Event()
    errors: list[Exception] = []

    def pump(name: str, rows: np.ndarray) -> None:
        i = 0
        while not stop.is_set():
            try:
                gw.predict(name, rows[i % len(rows)], timeout=10.0)
            except Exception as exc:  # any serving error fails the demo below
                errors.append(exc)
                return
            i += 1

    pumps = [
        threading.Thread(target=pump, args=("io-throughput", theta_rows)),
        threading.Thread(target=pump, args=("cori-throughput", cori_rows)),
    ]
    for t in pumps:
        t.start()

    # stage change under live two-model traffic: promote Theta v2, roll back
    time.sleep(0.15)
    registry.promote("io-throughput", v2)
    time.sleep(0.15)
    registry.rollback("io-throughput")
    time.sleep(0.10)
    stop.set()
    for t in pumps:
        t.join()
    tuner.stop()
    assert not errors, errors

    # quiesced: each name still answers bit-identically to its own model
    theta_probe, cori_probe = theta_rows[0], cori_rows[0]
    assert gw.predict("io-throughput", theta_probe, timeout=10.0) == \
        v1_model.predict(theta_probe[None, :])[0]
    assert gw.predict("cori-throughput", cori_probe, timeout=10.0) == \
        cori_model.predict(cori_probe[None, :])[0]
    print("gateway served 2 models through promote/rollback under traffic, zero errors")
    print(gw.stats().summary())
    print(f"tuner made {len(tuner.history)} adjustments; final limits: " + ", ".join(
        f"{n}: batch={b}, delay={1e3 * d:.2f}ms"
        for n, (b, d) in sorted(tuner.limits().items())
    ))

# --- sharded cluster: the same registry served from worker processes -- #
print("\nspawning a 2-shard serving cluster from the registry snapshot ...")
with ShardedServingCluster(registry, n_shards=2, max_batch=64, max_delay=0.005) as cluster:
    owners = {name: cluster.shard_of(name) for name in registry.names()}
    print(f"hash routing: {owners}")

    # interleaved two-name stream, bit-identical to the models themselves
    mixed = [("io-throughput", r) for r in X[test[:150]]]
    mixed += [("cori-throughput", r) for r in Xc[2000:2150]]
    tickets = [(name, cluster.submit(name, row)) for name, row in mixed]
    cluster.flush()
    served = np.array([t.result(timeout=10.0) for _, t in tickets])
    direct = np.array([
        (v1_model if name == "io-throughput" else cori_model).predict(row[None, :])[0]
        for name, row in mixed
    ])
    assert np.array_equal(served, direct)
    print(f"served {len(mixed)} requests across 2 shard processes, bit-identical")

    # a stage change broadcasts to every shard before returning
    probe = X[test[0]]
    registry.promote("io-throughput", v2)
    assert cluster.predict("io-throughput", probe, timeout=10.0) == \
        v2_model.predict(probe[None, :])[0]
    registry.rollback("io-throughput")
    assert cluster.predict("io-throughput", probe, timeout=10.0) == \
        v1_model.predict(probe[None, :])[0]
    print("promote/rollback broadcast held cluster-wide")
    print(cluster.stats().summary())

# row-parallel fan-out of one big batch over a replicated cluster
with ShardedServingCluster(
    registry, n_shards=2, route="replicated", max_batch=512, max_delay=0.005
) as cluster:
    block = X[test[:400]]
    fanned = cluster.predict_block("io-throughput", block, timeout=10.0)
    assert np.array_equal(fanned, v1_model.predict(block))
    print(f"replicated mode fanned a {block.shape[0]}-row block across both shards, "
          "bit-identical to one predict call")

# --- §7 online monitoring: drift detection, auto-rollback, shadow ----- #
print("\nstanding up the online monitoring plane ...")
# the training pipeline files a reference snapshot next to the model:
# the feature sample drift is scored against, and the corpus's EU
# distribution novel jobs are tagged against (§VIII's AU/EU split)
registry.set_reference(
    "io-throughput", X[train],
    eu=epistemic_sample(v1_model, X[train]), names=_names,
)

# inject §VIII-style deployment drift with the simulator's own knobs: the
# application mix shifts toward the large ML/analysis codes and novel
# applications (feature-stream drift the PSI windows catch), while the
# I/O weather turns hostile (noisier throughput, so the old model's live
# error genuinely degrades — what the retrained challenger fixes)
base_cfg = preset("theta", n_jobs=1200, seed=7)
drift_cfg = replace(
    base_cfg,
    seed=77,
    workload=replace(
        base_cfg.workload,
        family_weights={"ior": 0.01, "hacc": 0.05, "qb": 0.04, "pwx": 0.05,
                        "writer": 0.05, "montage": 0.05, "enzo": 0.15,
                        "cosmoflow": 0.60},
        ood_fraction=0.30,
        deployment_cutoff=0.0,
    ),
    platform=replace(base_cfg.platform, noise_sigma=0.08),
    weather=replace(base_cfg.weather, ou_sigma=0.20, degradations_per_year=40.0),
)
drifted = build_dataset(drift_cfg)
Xd, _ = feature_matrix(drifted, "posix")
yd = drifted.y

registry.promote("io-throughput", v2)  # v2 takes production; v1 is the fallback
# window/threshold calibrated to the platform: consecutive healthy
# 256-job windows of this workload peak near PSI 0.18 (jobs arrive in
# campaign bursts, so small windows are lumpy), while the injected drift
# scores > 2 — the rule fires on the regime change, not the lumpiness
plane = MonitoringPlane(registry, window=256, min_window=256, eval_every=64,
                        cooldown_s=5.0)
plane.watch("io-throughput")
plane.add_rule(PsiThresholdRule(threshold=0.5, action="rollback"),
               names=["io-throughput"])

with ServingGateway(registry, max_batch=64, max_delay=0.005) as gw:
    plane.attach(gw)

    # healthy traffic first: the window fills, no rule fires
    for row in X[test[:300]]:
        gw.predict("io-throughput", row, timeout=10.0)
    healthy_psi = plane.status()["io-throughput"].get("max_psi", 0.0)
    assert not plane.events, list(plane.events)

    # the workload moves: drifted jobs stream in, the windowed PSI crosses
    # threshold, and the policy rolls production back to the fallback
    for row in Xd[:200]:
        gw.predict("io-throughput", row, timeout=10.0)
    drift_psi = plane.status()["io-throughput"]["max_psi"]
    assert plane.events, "injected drift did not trigger the PSI rule"
    event = plane.events[0]
    assert registry.production_version("io-throughput") == v1
    print(f"healthy window PSI {healthy_psi:.3f} -> drifted {drift_psi:.3f}: "
          f"[{event.rule}] {event.detail}")

    # novel-job tagging on the same drifted stream (per-request EU)
    for row in Xd[:50]:
        gw.predict_dist("io-throughput", row, timeout=10.0)
    st = plane.status()["io-throughput"]
    print(f"EU tap: {st['eu_novel']}/{st['eu_observed']} drifted jobs tagged novel "
          f"(corpus rate would be ~1%)")

    # champion-challenger: retrain on the drifted window, stage it, and
    # let shadow scoring on labeled outcomes earn the promotion
    v3_model = RandomForestRegressor(n_estimators=120, max_depth=12, random_state=5)
    fit_idx = np.concatenate([train, test[:300]])
    X_v3 = np.vstack([X[fit_idx], Xd[:400]])
    v3_model.fit(X_v3, np.concatenate([y[fit_idx], yd[:400]]))
    # the retrain ships WITH its reference: the new corpus covers the
    # drifted regime, and re-watching resets the drift window against it —
    # otherwise the still-armed PSI rule would keep scoring the new regime
    # as drifted and roll back the very promotion the shadow validates
    registry.set_reference(
        "io-throughput", X_v3, eu=epistemic_sample(v3_model, X_v3), names=_names,
    )
    plane.watch("io-throughput")
    v3 = registry.register("io-throughput", v3_model)
    plane.shadow("io-throughput", v3, fraction=0.5, min_outcomes=40)
    plane.add_rule(ShadowWinnerRule(), names=["io-throughput"])

    for row, outcome in zip(Xd[400:600], yd[400:600]):
        gw.predict("io-throughput", row, timeout=10.0)   # mirrored to v3
        plane.record_outcome("io-throughput", row, outcome)  # label lands later
    fired = plane.evaluate("io-throughput")
    shadow_event = next(e for e in plane.events if e.rule == "shadow-winner")
    assert registry.production_version("io-throughput") == v3
    print(f"[{shadow_event.rule}] {shadow_event.detail}")
    print(f"monitoring plane: {len(plane.events)} events, "
          f"0 tap errors ({gw.tap_errors}), production ended on v{v3} "
          "with every serving number bit-identical along the way")
