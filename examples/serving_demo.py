"""Serving the I/O models: registry, micro-batching, and cached rollout.

Walks the full serving story on a simulated Theta workload:

1. fit a forest on the historical window and **register** it (the registry
   freezes every array the model owns — from then on it is an immutable,
   promotable artifact),
2. stand up an :class:`~repro.serve.service.InferenceService` and stream
   single-job requests through the **micro-batcher**, checking the answers
   are bit-identical to direct predicts,
3. replay duplicate jobs against the **prediction cache** (HPC streams are
   ~30 % duplicates, §VI.A — hits are free),
4. stage a retrained v2, **promote** it (cache invalidates itself), watch
   the same request get the new answer, then **rollback**.

Run with ``PYTHONPATH=src python examples/serving_demo.py``.
"""

import numpy as np

from repro.config import preset
from repro.data import build_dataset, feature_matrix, temporal_split
from repro.ml.forest import RandomForestRegressor
from repro.serve import InferenceService, ModelRegistry

print("simulating a Theta-like workload ...")
dataset = build_dataset(preset("theta", n_jobs=3000, seed=7))
X, _names = feature_matrix(dataset, "posix")
y = dataset.y
train, test = temporal_split(dataset.start_time, cutoff_frac=0.7)

print("fitting v1 forest on the historical window ...")
v1_model = RandomForestRegressor(n_estimators=120, max_depth=12, random_state=0)
v1_model.fit(X[train], y[train])

registry = ModelRegistry()
v1 = registry.register("io-throughput", v1_model, promote=True)
print(f"registered + promoted version {v1} "
      f"({registry.get_version('io-throughput').n_frozen_arrays} arrays frozen)")

with InferenceService(registry, "io-throughput", max_batch=64, max_delay=0.005) as svc:
    # --- micro-batched scoring of "arriving" jobs --------------------- #
    arriving = X[test[:500]]
    tickets = [svc.submit(row) for row in arriving]
    svc.flush()
    served = np.array([t.result(timeout=10.0) for t in tickets])
    direct = np.array([v1_model.predict(row[None, :])[0] for row in arriving])
    assert np.array_equal(served, direct)
    print(f"scored {len(arriving)} jobs micro-batched, bit-identical to direct predicts")

    # --- duplicate jobs hit the cache --------------------------------- #
    for row in arriving[:100]:  # resubmitted job signatures
        svc.predict(row, timeout=10.0)
    stats = svc.stats()
    print(f"after replaying 100 duplicates: {stats.summary()}")

    # --- staged rollout: promote v2, then roll back ------------------- #
    probe = arriving[0]
    v2_model = RandomForestRegressor(n_estimators=120, max_depth=12, random_state=1)
    v2_model.fit(X[np.concatenate([train, test[:500]])], y[np.concatenate([train, test[:500]])])
    v2 = registry.register("io-throughput", v2_model)
    print(f"staged version {v2} (production still v{registry.production_version('io-throughput')})")

    p1 = svc.predict(probe, timeout=10.0)
    registry.promote("io-throughput", v2)
    p2 = svc.predict(probe, timeout=10.0)
    assert p2 == v2_model.predict(probe[None, :])[0]
    registry.rollback("io-throughput")
    p3 = svc.predict(probe, timeout=10.0)
    assert p3 == p1
    print(f"probe job: v1={p1:.4f}  v2={p2:.4f}  rollback={p3:.4f}")
    print(f"final stats: {svc.stats().summary()}")
