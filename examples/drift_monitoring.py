#!/usr/bin/env python
"""Deployment-time monitoring: drift, novelty, and when to retrain.

The paper's Fig. 1d shows model error spiking once evaluation leaves the
training time span; ref [5] (Madireddy et al.) treats this as a concept-
drift problem.  This example assembles a monitoring stack a production
deployment would run, from parts of this library:

* PSI feature drift  — population-level shift of the incoming job stream;
* ensemble EU        — per-job novelty (the §VIII litmus test);
* kNN distance       — a model-free second opinion on novelty;
* rolling error      — the ground truth a site only sees in hindsight.

Run:  python examples/drift_monitoring.py
"""

import numpy as np

from repro import build_dataset, feature_matrix, preset
from repro.data import temporal_split
from repro.ml import GradientBoostingRegressor, knn_novelty, median_abs_pct_error
from repro.ml.ensemble import DeepEnsemble
from repro.stats import DriftMonitor
from repro.viz import format_table


def main() -> None:
    dataset = build_dataset(preset("theta", n_jobs=6000))
    X, names = feature_matrix(dataset, "posix")
    y = dataset.y

    # deploy at 70 % of the span: everything after is "production traffic"
    train, future = temporal_split(dataset.start_time, cutoff_frac=0.7)
    model = GradientBoostingRegressor(n_estimators=300, max_depth=8).fit(X[train], y[train])
    ensemble = DeepEnsemble(n_members=4, diversity="arch", epochs=30, random_state=0)
    ensemble.fit(X[train], y[train])
    monitor = DriftMonitor().fit(np.log10(1.0 + np.abs(X[train])), names=names)

    # score production traffic in monthly windows
    t = dataset.start_time[future]
    edges = np.linspace(t.min(), t.max() + 1.0, 7)
    rows = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        idx = future[(t >= lo) & (t < hi)]
        if idx.size < 30:
            continue
        err = median_abs_pct_error(y[idx], model.predict(X[idx]))
        psi = monitor.score(np.log10(1.0 + np.abs(X[idx])))
        eu = ensemble.decompose(X[idx]).epistemic_std
        novelty = knn_novelty(X[train], X[idx], k=10)
        rows.append([
            f"{(lo - dataset.start_time.min()) / 86400:.0f}d",
            idx.size,
            f"{err:.1f}%",
            psi.n_drifted,
            f"{np.median(eu):.3f}",
            f"{(eu > np.quantile(eu, 0.99)).sum()}",
            f"{np.median(novelty):.1f}",
        ])
    print(format_table(
        ["window", "jobs", "model err", "drifted feats", "median EU", "EU alerts", "kNN dist"],
        rows,
        title="Production monitoring windows (post-deployment)"))

    print("\nreading the table:")
    print("  * 'model err' is only measurable after the fact (needs ground truth);")
    print("  * PSI + EU + kNN are computable the moment a job arrives —")
    print("    they are the leading indicators a site can act on;")
    print("  * windows where EU alerts cluster are §VIII's novel applications;")
    print("    persistent PSI drift says the whole workload moved — retrain.")


if __name__ == "__main__":
    main()
