#!/usr/bin/env python
"""Opening the black box: which Darshan counters drive a prediction?

The paper calls I/O models "often opaque" (§I); its companion work
(Isakov et al., SC'20 [2]) attacks that with explainable local models.
This example applies the same toolkit to a tuned throughput model:

1. permutation importance — global: which counters matter at all;
2. partial dependence     — how throughput responds to one counter;
3. local surrogate (LIME-style) — why *this* job is predicted slow;
4. lasso path             — which counters survive L1 selection
   (a linear-world echo of the Fig. 3 redundancy finding).

Run:  python examples/model_explainability.py
"""

import numpy as np

from repro import build_dataset, feature_matrix, preset
from repro.data import train_val_test_split
from repro.ml import (
    GradientBoostingRegressor,
    LocalSurrogate,
    lasso_path,
    partial_dependence,
    permutation_importance,
)
from repro.viz import format_table


def main() -> None:
    dataset = build_dataset(preset("theta", n_jobs=4000))
    X, names = feature_matrix(dataset, "posix")
    y = dataset.y
    train, _, test = train_val_test_split(len(dataset), rng=0)
    model = GradientBoostingRegressor(n_estimators=250, max_depth=8).fit(X[train], y[train])

    # 1 — permutation importance (on held-out jobs)
    imp = permutation_importance(model, X[test].copy(), y[test], n_repeats=3)
    order = np.argsort(imp)[::-1][:8]
    print(format_table(
        ["counter", "error increase when shuffled (dex)"],
        [[names[i], f"{imp[i]:.4f}"] for i in order],
        title="Global: permutation importance (top 8)"))

    # 2 — partial dependence on the most important counter
    top = int(order[0])
    grid, pd_vals = partial_dependence(model, X[test], feature=top, n_grid=8)
    print(format_table(
        [names[top], "mean predicted log10 MiB/s"],
        [[f"{g:.3g}", f"{v:.2f}"] for g, v in zip(grid, pd_vals)],
        title=f"\nResponse curve: throughput vs {names[top]}"))

    # 3 — explain the slowest-predicted job in the test set
    pred = model.predict(X[test])
    anchor_row = test[int(np.argmin(pred))]
    exp = LocalSurrogate(n_keep=8, random_state=0).explain(model, X[train], X[anchor_row])
    print(f"\nLocal: why is job {anchor_row} predicted slow "
          f"({10**exp.prediction:.0f} MiB/s)?  surrogate R²={exp.local_r2:.2f}")
    for name, weight in exp.top(names, k=5):
        direction = "pushes throughput down" if weight < 0 else "pushes throughput up"
        print(f"  {name:28s} weight {weight:+.3f}  ({direction})")

    # 4 — lasso path: how many counters does a linear view actually need?
    Z = np.log10(1.0 + np.abs(X[train]))
    alphas, coefs = lasso_path(Z, y[train], n_alphas=12)
    nnz = (coefs != 0.0).sum(axis=1)
    print(format_table(
        ["alpha", "surviving counters"],
        [[f"{a:.4f}", int(k)] for a, k in zip(alphas, nnz)],
        title="\nLasso path (L1 feature selection over log-counters)"))
    print("  -> most of the 90+ columns are redundant with a handful of")
    print("     volume/parallelism/access-pattern counters — the same story")
    print("     Fig. 3 tells when MPI-IO features fail to add information.")


if __name__ == "__main__":
    main()
