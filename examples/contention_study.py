#!/usr/bin/env python
"""Fig. 1b as a tool: which applications suffer most from contention?

Compares per-application throughput spread across near-concurrent duplicate
runs (shared weather, different neighbours) and relates it to the simulated
platform's ground-truth sensitivity — the paper's observation that "some
applications are more sensitive to contention than others".

Run:  python examples/contention_study.py
"""

import numpy as np

from repro import build_dataset, preset
from repro.data import concurrent_subsets, find_duplicate_sets
from repro.ml.metrics import dex_to_pct
from repro.simulator.applications import FAMILIES, family_index
from repro.taxonomy.tdist import pooled_residuals
from repro.viz import format_table


def main() -> None:
    dataset = build_dataset(preset("theta", n_jobs=10000))
    dups = find_duplicate_sets(dataset.frames["posix"])
    subsets = concurrent_subsets(dups, dataset.start_time, window=3600.0)
    print(f"{len(subsets)} near-concurrent duplicate sets "
          f"({sum(len(s) for s in subsets)} jobs)")

    rows = []
    for name, family in FAMILIES.items():
        fid = family_index(name)
        members = [s[dataset.meta["family_id"][s] == fid] for s in subsets]
        members = [m for m in members if m.size >= 2]
        resid = pooled_residuals(dataset.y, members)
        if resid.size < 8:
            continue
        rows.append(
            [name, f"±{dex_to_pct(np.percentile(np.abs(resid), 75)):.1f}%",
             f"{family.sensitivity_base:.2f}", int(resid.size)]
        )
    rows.sort(key=lambda r: -float(r[1][1:-1]))
    print(format_table(
        ["application", "concurrent dup spread (p75)", "true sensitivity", "samples"],
        rows, title="\nContention sensitivity by application:",
    ))
    print("\nReading: spread should track the (normally unobservable) sensitivity "
          "column — the simulator lets us check the paper's interpretation.")


if __name__ == "__main__":
    main()
