#!/usr/bin/env python
"""§IX as a tool: quantify a system's inherent I/O variability.

Uses concurrent duplicate jobs to answer the administrator's question
"how much throughput variance should users expect?", demonstrates why the
Δt = 0 residuals follow a Student-t rather than a normal distribution, and
shows the effect of Bessel's correction on small duplicate sets.

Run:  python examples/noise_characterization.py
"""

import numpy as np

from repro import build_dataset, preset
from repro.data import concurrent_subsets, find_duplicate_sets
from repro.taxonomy import fit_t_distribution, noise_bound
from repro.taxonomy.tdist import pooled_residuals
from repro.viz import ascii_histogram


def main() -> None:
    for platform, n_jobs in (("theta", 8000), ("cori", 12000)):
        dataset = build_dataset(preset(platform, n_jobs=n_jobs))
        dups = find_duplicate_sets(dataset.frames["posix"])
        nb = noise_bound(dataset.y, dups, dataset.start_time)

        print(f"\n=== {platform} ===")
        print(f"concurrent (Δt=0) duplicate sets: {nb.n_concurrent_sets} "
              f"({nb.set_size_share_2 * 100:.0f}% of size 2, "
              f"{nb.set_size_share_le6 * 100:.0f}% of size ≤6)")
        print(f"t-fit: df={nb.tfit.df:.1f}, σ={nb.sigma_dex:.4f} dex")
        print(f"expected variability: ±{nb.band_68_pct:.2f}% (68%), "
              f"±{nb.band_95_pct:.2f}% (95%)")
        print(f"model-error floor: {nb.median_abs_pct:.2f}% median absolute")

        # why Bessel matters: sets of 2 bias σ down by sqrt(2)
        subsets = concurrent_subsets(dups, dataset.start_time)
        raw = pooled_residuals(dataset.y, subsets, correct=False)
        print(f"σ naive={fit_t_distribution(raw).sigma:.4f} dex vs "
              f"corrected={nb.sigma_dex:.4f} dex (Bessel)")

        if platform == "theta":
            print(ascii_histogram(nb.residuals_dex, bins=18, width=40,
                                  title="Δt=0 residual distribution (dex):"))


if __name__ == "__main__":
    main()
