#!/usr/bin/env python
"""Gauge-style workload clustering: triage a job log without labels.

§II of the paper splits ML-for-I/O into throughput *modeling* (the paper's
subject) and workload *clustering* (its prior work, Gauge [8]).  This
example runs the clustering track end to end:

1. cluster a Theta-like job log on its Darshan POSIX features;
2. summarize each cluster the way an I/O expert would triage it;
3. cross the clusters with a fitted throughput model to localize *where*
   the model underperforms — which is step zero of applying the taxonomy.

Run:  python examples/workload_clustering.py
"""

import numpy as np

from repro import build_dataset, feature_matrix, preset
from repro.cluster import DBSCAN, cluster_workload, silhouette_score
from repro.data import train_val_test_split
from repro.data.preprocessing import Standardizer
from repro.ml import GradientBoostingRegressor
from repro.viz import format_table


def main() -> None:
    dataset = build_dataset(preset("theta", n_jobs=4000))
    X, _ = feature_matrix(dataset, "posix")

    # a quick throughput model so clusters can be scored by model error
    train, _, _ = train_val_test_split(len(dataset), rng=0)
    model = GradientBoostingRegressor(n_estimators=200, max_depth=8).fit(
        X[train], dataset.y[train]
    )

    report = cluster_workload(dataset, n_clusters=10, model=model, model_X=X)
    rows = [
        [s.cluster_id, s.n_jobs, s.dominant_family, f"{s.family_purity:.0%}",
         f"{s.duplicate_share:.0%}", f"{s.model_error_pct:.1f}%"]
        for s in sorted(report.summaries, key=lambda s: -s.n_jobs)
    ]
    print(format_table(
        ["id", "jobs", "family", "purity", "dup share", "model err"],
        rows, title="Workload clusters (k-means on Darshan POSIX features)"))

    Z = Standardizer().fit_transform(X)
    print(f"\nsilhouette score: {silhouette_score(Z, report.labels):.2f}")

    worst = report.worst_modeled(3)
    print("\nwhere the model struggles (worst clusters by median error):")
    for s in worst:
        print(f"  cluster {s.cluster_id}: {s.dominant_family:10s} "
              f"err {s.model_error_pct:.1f}%  ({s.n_jobs} jobs)")
    print("  -> these clusters are where a practitioner would start the")
    print("     taxonomy's litmus tests (is it the model, the data, or noise?)")

    # density view: DBSCAN leaves low-density (novel-looking) jobs unassigned
    # (eps sized so the known-app manifolds connect; novel clumps stay sparse)
    db = DBSCAN(eps=5.0, min_samples=5).fit(Z)
    novel_truth = dataset.meta["is_ood"]
    noise_rate_normal = float(np.mean(db.labels_[~novel_truth] == -1))
    noise_rate_novel = float(np.mean(db.labels_[novel_truth] == -1)) if novel_truth.any() else 0.0
    print(f"\nDBSCAN density view: {db.n_clusters_} clusters, "
          f"{db.noise_fraction_:.1%} of jobs below density threshold")
    print(f"  unassigned rate — known apps: {noise_rate_normal:.1%}, "
          f"truly novel apps: {noise_rate_novel:.1%}")
    print("  -> density is a third OoD lens next to ensemble EU and kNN distance")


if __name__ == "__main__":
    main()
