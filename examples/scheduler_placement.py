#!/usr/bin/env python
"""Why contention is idiosyncratic: a scheduler + striping walkthrough.

The paper's §IX attributes a large error share to contention that "cannot
be predicted or modeled without knowledge of all jobs running on the
system".  This example makes that concrete with the scheduler substrate:

1. schedule the same job trace on a dragonfly machine under three
   placement policies (FCFS + EASY backfill);
2. stripe every running job over Lustre OSTs;
3. measure, for pairs of *identical* jobs submitted together, how
   differently their OST neighbourhoods are loaded.

The punchline mirrors the paper: even with a deterministic scheduler and
full knowledge of the queue, stripe placement makes twin jobs see different
neighbour traffic — the unobservable ζl component.

Run:  python examples/scheduler_placement.py
"""

import numpy as np

from repro.scheduler import (
    BatchScheduler,
    Dragonfly,
    OstStriper,
    PlacementPolicy,
    ost_overlap_matrix,
)
from repro.viz import format_table


def make_trace(n_jobs: int, rng: np.random.Generator, n_nodes: int):
    """A bursty trace with duplicate pairs submitted back-to-back."""
    submit = np.sort(rng.uniform(0.0, 12 * 3600.0, n_jobs))
    nodes = np.minimum(rng.geometric(0.03, n_jobs), n_nodes // 3)
    wall = rng.lognormal(7.3, 0.9, n_jobs)
    # make the last 20 % of jobs exact twins of earlier ones, submitted
    # one second after their sibling (the Δt=0 duplicate structure of §IX)
    n_twin = n_jobs // 5
    twin_of = rng.integers(0, n_jobs - n_twin, n_twin)
    submit[-n_twin:] = submit[twin_of] + 1.0
    nodes[-n_twin:] = nodes[twin_of]
    wall[-n_twin:] = wall[twin_of]
    order = np.argsort(submit)
    return submit[order], nodes[order], wall[order]


def main() -> None:
    rng = np.random.default_rng(7)
    topo = Dragonfly(n_groups=8, routers_per_group=12, nodes_per_router=4)
    print(f"machine: dragonfly, {topo.n_groups} groups, {topo.n_nodes} nodes, "
          f"diameter {topo.diameter()} hops")

    submit, nodes, wall = make_trace(300, rng, topo.n_nodes)

    rows = []
    for policy in ("contiguous", "cluster", "random"):
        sched = BatchScheduler(PlacementPolicy(topo, policy, seed=1))
        jobs, stats = sched.run(submit, nodes, wall)
        locality = np.array([j.locality for j in jobs])
        rows.append([
            policy,
            f"{stats.mean_wait:.0f}s",
            f"{stats.backfill_share:.0%}",
            f"{np.mean(locality):.2f}",
            f"{np.std(locality):.2f}",
        ])
    print(format_table(
        ["placement", "mean wait", "backfilled", "mean hops", "hop spread"],
        rows,
        title="\nScheduling the same trace under three placement policies"))

    # --- OST striping: twin jobs, different neighbourhoods -------------- #
    striper = OstStriper(n_ost=56, policy="roundrobin")
    concurrent = [striper.assign(8) for _ in range(12)]  # a busy instant
    twins = [striper.assign(8), striper.assign(8)]       # identical twin jobs
    M = ost_overlap_matrix(concurrent + twins, 56)
    twin_a, twin_b = len(concurrent), len(concurrent) + 1
    neigh_a = M[twin_a, :len(concurrent)].sum()
    neigh_b = M[twin_b, :len(concurrent)].sum()
    print("\nOST neighbourhoods of two identical jobs submitted together:")
    print(f"  twin A total stripe overlap with running jobs: {neigh_a:.2f}")
    print(f"  twin B total stripe overlap with running jobs: {neigh_b:.2f}")
    print("  -> same code, same inputs, same instant, different contention —")
    print("     the ζl term no log can predict (paper §IX), and the reason the")
    print("     simulator models placement luck as an irreducible random factor.")


if __name__ == "__main__":
    main()
