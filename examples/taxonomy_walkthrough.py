#!/usr/bin/env python
"""The paper's Fig. 7 procedure, end to end, on a simulated platform.

Runs all five steps of the taxonomy framework — baseline model, duplicate
bound + tuning, golden time model, OoD tagging, aleatory floor — and prints
the error-attribution breakdown.

Run:  python examples/taxonomy_walkthrough.py [theta|cori]
"""

import sys
import time

from repro import TaxonomyPipeline, build_dataset, preset
from repro.taxonomy.report import render_breakdown


def main() -> None:
    platform = sys.argv[1] if len(sys.argv) > 1 else "theta"
    n_jobs = 4000 if platform == "theta" else 6000
    print(f"building {platform} dataset ({n_jobs} jobs)...")
    dataset = build_dataset(preset(platform, n_jobs=n_jobs))

    pipeline = TaxonomyPipeline(
        tuning_grid={
            "n_estimators": (100, 300),
            "max_depth": (6, 10),
            "learning_rate": (0.07,),
            "min_child_weight": (6,),
            "subsample": (0.8,),
            "colsample_bytree": (0.8,),
            "loss": ("squared",),
        },
        ensemble_members=5,
        ensemble_epochs=20,
    )
    t0 = time.time()
    report = pipeline.run(dataset)
    print(f"pipeline finished in {time.time() - t0:.0f}s\n")
    print(render_breakdown(report.breakdown))

    b = report.breakdown
    print("\ninterpretation:")
    if b.aleatory_pct_of_total > b.application_pct_of_total:
        print("  - noise/contention dominates: collecting more features will not help much")
    else:
        print("  - application modeling dominates: tuning or richer features should help")
    print(
        f"  - a job on this system should expect its I/O throughput within "
        f"±{b.details['noise_band_68_pct']:.1f}% of prediction 68% of the time"
    )


if __name__ == "__main__":
    main()
