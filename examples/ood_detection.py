#!/usr/bin/env python
"""§VIII as a tool: flag jobs the model should not be trusted on.

Trains a deep ensemble on the pre-deployment period, decomposes predictive
uncertainty on the post-deployment period, and shows that high epistemic
uncertainty picks out the genuinely novel applications the simulator
injected after the cutoff — the "at what point are applications too novel
to trust the model?" question from the paper's introduction.

Run:  python examples/ood_detection.py
"""

import numpy as np

from repro import build_dataset, feature_matrix, preset
from repro.data import temporal_split
from repro.ml.ensemble import DeepEnsemble
from repro.taxonomy import ood_attribution


def main() -> None:
    dataset = build_dataset(preset("theta", n_jobs=6000))
    X, _ = feature_matrix(dataset, "posix")
    train, deploy = temporal_split(dataset.start_time, cutoff_frac=0.8)
    print(f"training on {train.size} pre-cutoff jobs; "
          f"monitoring {deploy.size} post-deployment jobs")

    ensemble = DeepEnsemble(n_members=5, diversity="arch", epochs=25, random_state=0)
    ensemble.fit(X[train], dataset.y[train])
    decomp = ensemble.decompose(X[deploy])

    ood = ood_attribution(decomp, dataset.y[deploy], quantile=0.985)
    print(f"\nEU threshold: {ood.threshold:.3f} dex")
    print(f"flagged {ood.is_ood.sum()} jobs ({ood.ood_fraction * 100:.1f}%) "
          f"carrying {ood.error_share * 100:.1f}% of the total error "
          f"({ood.enrichment:.1f}x the average)")

    truth = dataset.meta["is_ood"][deploy]
    tp = (truth & ood.is_ood).sum()
    print(f"\nground truth check (simulator-only luxury):")
    print(f"  truly novel jobs in deployment window: {truth.sum()}")
    print(f"  flagged ∩ truly novel:                 {tp}")
    print(f"  precision {tp / max(ood.is_ood.sum(), 1) * 100:.0f}%  "
          f"recall {tp / max(truth.sum(), 1) * 100:.0f}%")

    eu = decomp.epistemic_std
    print(f"\nmedian EU — novel apps: {np.median(eu[truth]):.3f} dex, "
          f"known apps: {np.median(eu[~truth]):.3f} dex")


if __name__ == "__main__":
    main()
