#!/usr/bin/env python
"""Quickstart: simulate a platform, train a model, run one litmus test.

Generates a small ALCF-Theta-like dataset, trains the default-configuration
gradient boosting model on the Darshan POSIX features, and compares its
test error with the duplicate-job lower bound (§VI.A of the paper).

Run:  python examples/quickstart.py
"""

from repro import TaxonomyPipeline, build_dataset, feature_matrix, preset
from repro.data import find_duplicate_sets, train_val_test_split
from repro.ml import GradientBoostingRegressor, median_abs_pct_error
from repro.taxonomy import application_bound


def main() -> None:
    # 1. simulate a platform and render its telemetry
    config = preset("theta", n_jobs=4000)
    dataset = build_dataset(config)
    print(f"simulated {len(dataset)} jobs; telemetry sources: {dataset.sources}")

    # 2. train an I/O throughput model on application (POSIX) features
    X, names = feature_matrix(dataset, "posix")
    train, val, test = train_val_test_split(len(dataset), rng=0)
    model = GradientBoostingRegressor(n_estimators=300, max_depth=8, learning_rate=0.07)
    model.fit(X[train], dataset.y[train])
    err = median_abs_pct_error(dataset.y[test], model.predict(X[test]))
    print(f"model test error: {err:.2f}% median absolute")

    # 3. the duplicate-job litmus test: how good could ANY model get?
    dups = find_duplicate_sets(dataset.frames["posix"])
    bound = application_bound(dataset.frames["posix"], dataset.y, dups=dups)
    print(
        f"duplicate bound:  {bound.median_abs_pct:.2f}% "
        f"({bound.n_duplicates} duplicates in {bound.n_sets} sets, "
        f"{bound.duplicate_fraction * 100:.1f}% of the dataset)"
    )
    gap = err - bound.median_abs_pct
    print(f"=> application-modeling error (removable by tuning): {max(gap, 0):.2f} points")

    # 4. top features the model actually uses
    imp = model.feature_importances()
    top = sorted(zip(imp, names), reverse=True)[:5]
    print("top features:", ", ".join(f"{n} ({v * 100:.1f}%)" for v, n in top))

    # next step: serve this model against live job streams — registry,
    # micro-batching, and cached staged rollout in examples/serving_demo.py
    print("see examples/serving_demo.py for the batched inference service")


if __name__ == "__main__":
    main()
